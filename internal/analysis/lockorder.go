package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition-order graph and flags
// cycles — the static witness of a potential deadlock between the monitor
// surfaces (ConcurrentMonitor, the remote client/server runtimes and anything
// sharding work across them later).
//
// A lock is identified by its declaration site, abstracted over instances:
// "pkg.Type.field" for a mutex field, "pkg.var" for a package-level mutex,
// "pkg.Type.(embedded)" for an embedded one. For every function (and every
// closure, analyzed as its own entry point) a forward dataflow over the CFG
// tracks the set of locks held at each node: Lock/RLock adds, Unlock/RUnlock
// removes, a deferred Unlock never removes (the lock is held to function
// end). Acquiring B while holding A records the edge A→B; calling a module
// function whose (transitive, closure-inclusive) summary acquires B records
// the same edges. Any cycle in the resulting graph — including a self-loop,
// i.e. re-acquiring a held lock — is reported at each participating
// acquisition site.
//
// Known imprecision (see DESIGN.md §8): locks are abstracted per declaration,
// not per instance (two instances of one type are one node); closures passed
// to other functions are analyzed with an empty held set; dynamic calls
// (interfaces, stored function values) contribute no edges; a goroutine
// spawned while holding a lock runs concurrently, so its acquisitions are
// deliberately not ordered after the spawner's held set.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "flags cycles in the module-wide lock-acquisition-order graph (potential deadlocks)",
	RunModule: runLockOrder,
}

// lockDecl is one function/method declaration participating in summaries.
type lockDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// lockEdge is a recorded "to is acquired while from is held" pair.
type lockEdge struct{ from, to string }

type lockOrderState struct {
	mp    *ModulePass
	decls map[string]lockDecl // funcID → declaration
	// summary maps funcID → set of lock keys the call may acquire,
	// transitively through module calls and through non-go closures.
	summary map[string]map[string]bool
	callees map[string]map[string]bool
	// edges maps each edge to the position of its first recorded acquisition
	// site; edgeOrder keeps recording order for deterministic reports.
	edges     map[lockEdge]token.Position
	edgeOrder []lockEdge
}

func runLockOrder(mp *ModulePass) {
	st := &lockOrderState{
		mp:      mp,
		decls:   make(map[string]lockDecl),
		summary: make(map[string]map[string]bool),
		callees: make(map[string]map[string]bool),
		edges:   make(map[lockEdge]token.Position),
	}
	st.index()
	st.solveSummaries()
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				st.flowRoots(pkg, fd.Body)
			}
		}
	}
	st.reportCycles()
}

// index collects every function declaration and its direct lock/callee sets.
func (st *lockOrderState) index() {
	for _, pkg := range st.mp.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := funcID(obj)
				st.decls[id] = lockDecl{pkg, fd}
				locks := make(map[string]bool)
				callees := make(map[string]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.GoStmt); ok {
						return false // concurrent: not acquired "during" this call
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg.Info, call)
					if fn == nil {
						return true
					}
					if kind := mutexMethodKind(fn); kind == lockAcquire {
						if key := lockKeyOf(pkg, call); key != "" {
							locks[key] = true
						}
					} else if kind == mutexNone {
						callees[funcID(fn)] = true
					}
					return true
				})
				st.summary[id] = locks
				st.callees[id] = callees
			}
		}
	}
}

// solveSummaries closes the per-function lock sets over the call graph.
func (st *lockOrderState) solveSummaries() {
	ids := make([]string, 0, len(st.summary))
	for id := range st.summary {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			locks := st.summary[id]
			for callee := range st.callees[id] {
				for key := range st.summary[callee] {
					if !locks[key] {
						locks[key] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockSet is the dataflow fact: the sorted set of lock keys held.
type lockSet struct{ keys []string }

func (s lockSet) Equal(o Fact) bool {
	t, ok := o.(lockSet)
	if !ok || len(s.keys) != len(t.keys) {
		return false
	}
	for i := range s.keys {
		if s.keys[i] != t.keys[i] {
			return false
		}
	}
	return true
}

func (s lockSet) with(key string) lockSet {
	i := sort.SearchStrings(s.keys, key)
	if i < len(s.keys) && s.keys[i] == key {
		return s
	}
	out := make([]string, 0, len(s.keys)+1)
	out = append(out, s.keys[:i]...)
	out = append(out, key)
	out = append(out, s.keys[i:]...)
	return lockSet{out}
}

func (s lockSet) without(key string) lockSet {
	i := sort.SearchStrings(s.keys, key)
	if i >= len(s.keys) || s.keys[i] != key {
		return s
	}
	out := make([]string, 0, len(s.keys)-1)
	out = append(out, s.keys[:i]...)
	out = append(out, s.keys[i+1:]...)
	return lockSet{out}
}

func (s lockSet) has(key string) bool {
	i := sort.SearchStrings(s.keys, key)
	return i < len(s.keys) && s.keys[i] == key
}

func joinLockSets(a, b Fact) Fact {
	s, t := a.(lockSet), b.(lockSet)
	out := s
	for _, k := range t.keys {
		out = out.with(k)
	}
	return out
}

// flowRoots runs the held-set dataflow over a function body and every closure
// nested in it (each closure with an empty entry set).
func (st *lockOrderState) flowRoots(pkg *Package, body *ast.BlockStmt) {
	main, lits := FuncCFGs(body)
	cfgs := []*CFG{main}
	litKeys := make([]*ast.FuncLit, 0, len(lits))
	for fl := range lits {
		litKeys = append(litKeys, fl)
	}
	sort.Slice(litKeys, func(i, j int) bool { return litKeys[i].Pos() < litKeys[j].Pos() })
	for _, fl := range litKeys {
		cfgs = append(cfgs, lits[fl])
	}
	for _, cfg := range cfgs {
		Solve(cfg, FlowProblem{
			Entry: lockSet{},
			Join:  joinLockSets,
			Transfer: func(b *Block, in Fact) Fact {
				held := in.(lockSet)
				for _, n := range b.Nodes {
					held = st.transferNode(pkg, n, held)
				}
				return held
			},
		})
	}
}

// transferNode applies one block node's lock events to the held set,
// recording order edges as a side effect (the edge map is idempotent, and
// held sets only grow across solver iterations, so every recorded edge is
// valid in the final solution).
func (st *lockOrderState) transferNode(pkg *Package, node ast.Node, held lockSet) lockSet {
	var deferred *ast.CallExpr
	if ds, ok := node.(*ast.DeferStmt); ok {
		deferred = ds.Call
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own root
		case *ast.GoStmt:
			return false // runs concurrently: no ordering after our held set
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, n)
			if fn == nil {
				return true
			}
			switch mutexMethodKind(fn) {
			case lockAcquire:
				if n == deferred {
					return true // defer mu.Lock() — acquiring at exit; ignore
				}
				key := lockKeyOf(pkg, n)
				if key == "" {
					return true
				}
				if held.has(key) {
					st.recordEdge(pkg, key, key, n.Pos())
				} else {
					for _, h := range held.keys {
						st.recordEdge(pkg, h, key, n.Pos())
					}
				}
				held = held.with(key)
			case lockRelease:
				if n == deferred {
					return true // defer mu.Unlock(): held to function end
				}
				if key := lockKeyOf(pkg, n); key != "" {
					held = held.without(key)
				}
			default:
				// A call into the module: everything its summary may acquire
				// is ordered after every lock we hold right now.
				if len(held.keys) == 0 {
					return true
				}
				for _, key := range sortedKeys(st.summary[funcID(fn)]) {
					for _, h := range held.keys {
						st.recordEdge(pkg, h, key, n.Pos())
					}
				}
			}
		}
		return true
	})
	return held
}

func (st *lockOrderState) recordEdge(pkg *Package, from, to string, pos token.Pos) {
	e := lockEdge{from, to}
	if _, ok := st.edges[e]; !ok {
		st.edges[e] = pkg.Fset.Position(pos)
		st.edgeOrder = append(st.edgeOrder, e)
	}
}

// reportCycles finds strongly connected components of the edge graph and
// reports every edge inside one (plus self-loops) at its acquisition site.
func (st *lockOrderState) reportCycles() {
	scc := tarjanSCC(st.edges)
	for _, e := range st.edgeOrder {
		pos := st.edges[e]
		if e.from == e.to {
			st.reportAt(pos, "lock-order: %s is acquired while already held (self-deadlock on a non-reentrant mutex)", e.from)
			continue
		}
		if scc[e.from] != 0 && scc[e.from] == scc[e.to] {
			members := sccMembers(scc, scc[e.from])
			st.reportAt(pos, "lock-order cycle among {%s}: %s is acquired here while %s is held, but elsewhere the order is reversed (potential deadlock)",
				strings.Join(members, ", "), e.to, e.from)
		}
	}
}

// reportAt appends a module diagnostic at an already-resolved position.
func (st *lockOrderState) reportAt(pos token.Position, format string, args ...interface{}) {
	*st.mp.diags = append(*st.mp.diags, Diagnostic{
		Pos:      pos,
		Analyzer: st.mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// tarjanSCC assigns a component id (≥1) to every node that shares a cycle
// with at least one other node; acyclic nodes get 0. Built on the shared
// tarjanComps (callgraph.go), which the call-graph condensation also uses.
func tarjanSCC(edges map[lockEdge]token.Position) map[string]int {
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	nodes := make([]string, 0, len(adj))
	for k := range adj {
		nodes = append(nodes, k)
	}
	sort.Strings(nodes)

	_, comps := tarjanComps(nodes, adj)
	comp := make(map[string]int)
	compID := 0
	for _, members := range comps {
		if len(members) > 1 {
			compID++
			for _, m := range members {
				comp[m] = compID
			}
		}
	}
	return comp
}

func sccMembers(comp map[string]int, id int) []string {
	var out []string
	for k, v := range comp {
		if v == id {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

type mutexKind int

const (
	mutexNone mutexKind = iota
	lockAcquire
	lockRelease
)

// mutexMethodKind classifies a resolved callee as a sync mutex acquire,
// release, or neither.
func mutexMethodKind(fn *types.Func) mutexKind {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return mutexNone
	}
	recv := typeName(sig.Recv().Type())
	if recv != "Mutex" && recv != "RWMutex" {
		return mutexNone
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return mutexNone
}

// lockKeyOf derives the declaration-site key of the mutex a Lock/Unlock call
// operates on: "pkg.Type.field", "pkg.var", "pkg.Type.(embedded)", or a
// line-qualified local name. Empty when the shape is unrecognizable. A free
// function (not a lockOrderState method) because chanlife reuses it to name
// the mutexes held around blocking channel operations.
func lockKeyOf(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := ast.Unparen(sel.X)
	if u, ok := recv.(*ast.UnaryExpr); ok && u.Op == token.AND {
		recv = ast.Unparen(u.X)
	}
	if !isSyncMutex(pkg.Info.TypeOf(recv)) {
		// Promoted method of an embedded mutex: x.Lock().
		if named := namedOf(pkg.Info.TypeOf(recv)); named != nil {
			return qualifiedTypeName(named) + ".(embedded)"
		}
		return ""
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if named := namedOf(pkg.Info.TypeOf(r.X)); named != nil {
			return qualifiedTypeName(named) + "." + r.Sel.Name
		}
		return pkg.Path + ".<anon>." + r.Sel.Name
	case *ast.Ident:
		obj := pkg.Info.Uses[r]
		if obj == nil {
			obj = pkg.Info.Defs[r]
		}
		if obj == nil {
			return pkg.Path + "." + r.Name
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// A local or captured mutex: qualify by declaration line so distinct
		// locals stay distinct while closures over the same var agree.
		return fmt.Sprintf("%s.%s@L%d", pkg.Path, r.Name, pkg.Fset.Position(obj.Pos()).Line)
	}
	return ""
}

func qualifiedTypeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// funcID is the cross-package-stable identity of a function: import path,
// receiver type (for methods) and name. Analyzed package variants re-check
// sources into fresh *types.Func objects, so identity must be by name.
func funcID(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv := typeName(sig.Recv().Type()); recv != "" {
			return pkgPath + "." + recv + "." + fn.Name()
		}
	}
	return pkgPath + "." + fn.Name()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
