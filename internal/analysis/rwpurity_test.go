package analysis

import "testing"

func TestRWPurityDirectWrite(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type Mon struct {
	mu sync.RWMutex
	n  int
	m  map[int]int
}

func (x *Mon) Bad() {
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.n++ // write to receiver state under the read lock
}

func (x *Mon) BadMap(k int) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	delete(x.m, k) // builtin mutation of receiver-held map
}

func (x *Mon) Read() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.n
}

func (x *Mon) CollectSorted() []int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]int, 0, len(x.m))
	for k := range x.m {
		out = append(out, k) // local collector: read paths may build copies
	}
	return out
}

func (x *Mon) WriteUnderFullLock() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.n++ // full Lock, not the read lock: out of scope
}

func (x *Mon) AfterRelease() {
	x.mu.RLock()
	n := x.n
	x.mu.RUnlock()
	x.n = n + 1 // manual release before the write
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{RWPurity}), []int{14, 20}, nil)
}

func TestRWPurityThroughCallee(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type Inner struct{ n int }

func (in *Inner) Bump() { in.n++ }

func (in *Inner) Peek() int { return in.n }

type Mon struct {
	mu    sync.RWMutex
	inner *Inner
}

func (x *Mon) Bad() {
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.inner.Bump() // callee's summary writes its receiver, rooted in ours
}

func (x *Mon) Good() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.inner.Peek()
}

func (x *Mon) LocalMutation() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	tmp := &Inner{}
	tmp.Bump() // mutates a local, not shared state
	return tmp.Peek() + x.inner.Peek()
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{RWPurity}), []int{19}, nil)
}

func TestRWPuritySuppressed(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type Mon struct {
	mu sync.RWMutex
	n  int
}

func (x *Mon) CachedRead() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	x.n++ //lint:allow rwpurity benign counter, protected by its own atomic in prod
	return x.n
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{RWPurity}), nil, []int{13})
}
