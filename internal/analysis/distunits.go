package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DistUnits is a taint-style units checker for the classic kNN bug of
// comparing a Euclidean distance against a squared one. Values become tagged
// at the geometry API boundary — geom's Dist/MinDist/MaxDist/MinDistRect/
// MaxDistRect return a distance, Dist2 a squared distance, rtree's
// NearestIter.Next yields a distance, Circle.R and wire.Message.Radius and
// parameters named "radius" hold distances — and the tags propagate through
// assignments flow-sensitively over the CFG, through dist*dist (squared),
// math.Sqrt (back to distance), min/max and same-unit +/-.
//
// Reported:
//
//   - a comparison (< <= > >= == !=) whose operands are definitely a distance
//     on one side and a squared distance on the other;
//   - +/- arithmetic mixing the two units;
//   - a struct field assigned a distance at one site and a squared distance
//     at another (per package) — the min-heap-ordering bug: a best-first
//     queue keyed by such a field interleaves incomparable priorities.
//
// Untagged values never flag (only definite cross-unit pairs are reported),
// and a variable holding different units on different paths joins to "mixed",
// which silences downstream comparisons rather than guessing.
var DistUnits = &Analyzer{
	Name: "distunits",
	Doc:  "flags comparisons, arithmetic and struct-field keys mixing distance with squared distance",
	Run:  runDistUnits,
}

type unit int

const (
	unitUnknown unit = iota
	unitDist
	unitDist2
	unitMixed
)

func (u unit) String() string {
	switch u {
	case unitDist:
		return "distance"
	case unitDist2:
		return "squared distance"
	case unitMixed:
		return "mixed units"
	}
	return "unknown"
}

func ujoin(a, b unit) unit {
	switch {
	case a == b:
		return a
	case a == unitUnknown:
		return b
	case b == unitUnknown:
		return a
	default:
		return unitMixed
	}
}

func crossUnits(a, b unit) bool {
	return (a == unitDist && b == unitDist2) || (a == unitDist2 && b == unitDist)
}

func runDistUnits(pass *Pass) {
	du := &distUnits{
		pass:        pass,
		fieldWrites: make(map[*types.Var]map[token.Pos]unit),
		inferred:    make(map[*types.Var]unit),
	}
	// Phase A: solve every root once, collecting struct-field write units.
	du.collect = true
	du.eachRoot(func(cfg *CFG, entry unitEnv) { du.flow(cfg, entry, false) })
	du.collect = false
	du.inferFieldUnits()
	// Phase B: re-solve with inferred field units visible and report.
	du.eachRoot(func(cfg *CFG, entry unitEnv) { du.flow(cfg, entry, true) })
	du.reportFieldConflicts()
}

type distUnits struct {
	pass        *Pass
	collect     bool
	report      bool
	fieldWrites map[*types.Var]map[token.Pos]unit
	inferred    map[*types.Var]unit
}

// eachRoot visits every function declaration and function literal with its
// entry environment (parameters named like "radius" start as distances).
func (du *distUnits) eachRoot(visit func(*CFG, unitEnv)) {
	for _, f := range du.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(NewCFG(fd.Body), du.entryEnv(fd.Type))
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					visit(NewCFG(fl.Body), du.entryEnv(fl.Type))
				}
				return true
			})
		}
	}
}

func (du *distUnits) entryEnv(ft *ast.FuncType) unitEnv {
	env := unitEnv{make(map[types.Object]unit)}
	if ft == nil || ft.Params == nil {
		return env
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if !strings.HasSuffix(strings.ToLower(name.Name), "radius") {
				continue
			}
			obj := du.pass.Info.Defs[name]
			if obj != nil && isFloat(obj.Type()) {
				env.m[obj] = unitDist
			}
		}
	}
	return env
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// unitEnv is the dataflow fact: the unit tag of each local variable.
type unitEnv struct{ m map[types.Object]unit }

func (e unitEnv) Equal(o Fact) bool {
	f, ok := o.(unitEnv)
	if !ok || len(e.m) != len(f.m) {
		return false
	}
	for k, v := range e.m {
		if w, ok := f.m[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func (e unitEnv) clone() unitEnv {
	out := make(map[types.Object]unit, len(e.m))
	for k, v := range e.m {
		out[k] = v
	}
	return unitEnv{out}
}

func joinUnitEnvs(a, b Fact) Fact {
	e, f := a.(unitEnv), b.(unitEnv)
	out := e.clone()
	for k, v := range f.m {
		if w, ok := out.m[k]; ok {
			out.m[k] = ujoin(w, v)
		} else {
			out.m[k] = v
		}
	}
	return out
}

func (du *distUnits) flow(cfg *CFG, entry unitEnv, report bool) {
	problem := FlowProblem{
		Entry: entry,
		Join:  joinUnitEnvs,
		Transfer: func(b *Block, in Fact) Fact {
			env := in.(unitEnv).clone()
			for _, n := range b.Nodes {
				du.node(n, env)
			}
			return env
		},
	}
	in := Solve(cfg, problem)
	if !report {
		return
	}
	du.report = true
	for _, b := range cfg.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		env := f.(unitEnv).clone()
		for _, n := range b.Nodes {
			du.node(n, env)
		}
	}
	du.report = false
}

// node scans one block node for cross-unit expressions and field writes, then
// applies its assignments to the environment.
func (du *distUnits) node(n ast.Node, env unitEnv) {
	du.scan(n, env)
	switch n := n.(type) {
	case *ast.AssignStmt:
		du.applyAssign(n, env)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					du.applyDecl(vs, env)
				}
			}
		}
	case *ast.RangeStmt:
		// Iteration variables: unknown units.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id != nil {
				if obj := du.pass.Info.Defs[id]; obj != nil {
					env.m[obj] = unitUnknown
				}
			}
		}
	}
}

// scan reports cross-unit comparisons/arithmetic and records composite-literal
// field writes anywhere inside the node.
func (du *distUnits) scan(n ast.Node, env unitEnv) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			switch m.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				a, b := du.unitOf(m.X, env), du.unitOf(m.Y, env)
				if crossUnits(a, b) && du.report {
					du.pass.Reportf(m.OpPos, "comparison mixes %s and %s operands; square one side (d*d) or take math.Sqrt of the other", a, b)
				}
			case token.ADD, token.SUB:
				a, b := du.unitOf(m.X, env), du.unitOf(m.Y, env)
				if crossUnits(a, b) && du.report {
					du.pass.Reportf(m.OpPos, "arithmetic mixes %s and %s operands; the result is meaningless", a, b)
				}
			}
		case *ast.CompositeLit:
			du.compositeWrites(m, env)
		}
		return true
	})
}

// compositeWrites records the unit of every struct-field value in a literal.
func (du *distUnits) compositeWrites(lit *ast.CompositeLit, env unitEnv) {
	if !du.collect {
		return
	}
	st, ok := du.pass.Info.TypeOf(lit).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field *types.Var
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := du.pass.Info.Uses[key].(*types.Var); ok {
				field = v
			}
			value = kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field != nil {
			du.recordFieldWrite(field, du.unitOf(value, env), value.Pos())
		}
	}
}

func (du *distUnits) applyAssign(n *ast.AssignStmt, env unitEnv) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Tuple assignment from a multi-result call.
		var ru []unit
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			if fn := calleeFunc(du.pass.Info, call); fn != nil {
				ru = resultUnits(fn)
			}
		}
		for i, lhs := range n.Lhs {
			u := unitUnknown
			if i < len(ru) {
				u = ru[i]
			}
			du.setLHS(lhs, u, env)
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		u := du.unitOf(n.Rhs[i], env)
		switch n.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			prev := du.unitOf(lhs, env)
			if crossUnits(prev, u) && du.report {
				du.pass.Reportf(n.TokPos, "arithmetic mixes %s and %s operands; the result is meaningless", prev, u)
			}
			u = ujoin(prev, u)
		case token.MUL_ASSIGN:
			u = mulUnit(du.unitOf(lhs, env), u)
		case token.ASSIGN, token.DEFINE:
			// u is the fresh unit.
		default:
			u = unitUnknown
		}
		du.setLHS(lhs, u, env)
	}
}

func (du *distUnits) applyDecl(vs *ast.ValueSpec, env unitEnv) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		var ru []unit
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			if fn := calleeFunc(du.pass.Info, call); fn != nil {
				ru = resultUnits(fn)
			}
		}
		for i, name := range vs.Names {
			u := unitUnknown
			if i < len(ru) {
				u = ru[i]
			}
			du.setIdent(name, u, env)
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			du.setIdent(name, du.unitOf(vs.Values[i], env), env)
		}
	}
}

func (du *distUnits) setLHS(lhs ast.Expr, u unit, env unitEnv) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		du.setIdent(l, u, env)
	case *ast.SelectorExpr:
		if du.collect {
			if field := du.fieldOf(l); field != nil {
				du.recordFieldWrite(field, u, l.Sel.Pos())
			}
		}
	}
}

func (du *distUnits) setIdent(id *ast.Ident, u unit, env unitEnv) {
	if id.Name == "_" {
		return
	}
	obj := du.pass.Info.Defs[id]
	if obj == nil {
		obj = du.pass.Info.Uses[id]
	}
	if obj != nil {
		env.m[obj] = u
	}
}

func (du *distUnits) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := du.pass.Info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

func (du *distUnits) recordFieldWrite(field *types.Var, u unit, pos token.Pos) {
	if u != unitDist && u != unitDist2 {
		return
	}
	if du.fieldWrites[field] == nil {
		du.fieldWrites[field] = make(map[token.Pos]unit)
	}
	du.fieldWrites[field][pos] = u
}

// inferFieldUnits condenses the collected writes into one unit per field:
// consistent writes tag the field, conflicting writes mark it mixed (and are
// reported by reportFieldConflicts).
func (du *distUnits) inferFieldUnits() {
	for field, writes := range du.fieldWrites {
		u := unitUnknown
		for _, w := range writes {
			u = ujoin(u, w)
		}
		du.inferred[field] = u
	}
}

func (du *distUnits) reportFieldConflicts() {
	fields := make([]*types.Var, 0, len(du.fieldWrites))
	for f := range du.fieldWrites {
		if du.inferred[f] == unitMixed {
			fields = append(fields, f)
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, field := range fields {
		writes := du.fieldWrites[field]
		poss := make([]token.Pos, 0, len(writes))
		for p := range writes {
			poss = append(poss, p)
		}
		sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
		base := writes[poss[0]]
		basePos := du.pass.Fset.Position(poss[0])
		for _, p := range poss[1:] {
			if writes[p] != base {
				du.pass.Reportf(p, "field %s is assigned a %s here but a %s at %s; a heap or comparison keyed on it orders incomparable values",
					field.Name(), writes[p], base, basePos)
			}
		}
	}
}

// unitOf computes the unit of an expression under the environment.
func (du *distUnits) unitOf(e ast.Expr, env unitEnv) unit {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := du.pass.Info.Uses[e]; obj != nil {
			return env.m[obj]
		}
	case *ast.SelectorExpr:
		if field := du.fieldOf(e); field != nil {
			return du.fieldUnit(field)
		}
		// Qualified identifier or method value: no unit.
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			return du.unitOf(e.X, env)
		}
	case *ast.BinaryExpr:
		a, b := du.unitOf(e.X, env), du.unitOf(e.Y, env)
		switch e.Op {
		case token.MUL:
			return mulUnit(a, b)
		case token.QUO:
			if a == unitDist2 && b == unitDist {
				return unitDist
			}
		case token.ADD, token.SUB:
			if crossUnits(a, b) {
				return unitUnknown // already reported; don't cascade
			}
			return ujoin(a, b)
		}
	case *ast.CallExpr:
		return du.callUnit(e, env)
	}
	return unitUnknown
}

func mulUnit(a, b unit) unit {
	if a == unitDist && b == unitDist {
		return unitDist2
	}
	return unitUnknown
}

func (du *distUnits) callUnit(call *ast.CallExpr, env unitEnv) unit {
	// Conversions (float64(x)) are transparent.
	if tv, ok := du.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return du.unitOf(call.Args[0], env)
	}
	// min/max builtins join their arguments.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := du.pass.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "min" || id.Name == "max") {
			u := unitUnknown
			for _, a := range call.Args {
				u = ujoin(u, du.unitOf(a, env))
			}
			return u
		}
	}
	fn := calleeFunc(du.pass.Info, call)
	if fn == nil {
		return unitUnknown
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Sqrt" && len(call.Args) == 1 {
		if du.unitOf(call.Args[0], env) == unitDist2 {
			return unitDist
		}
		return unitUnknown
	}
	if ru := resultUnits(fn); len(ru) == 1 {
		return ru[0]
	}
	return unitUnknown
}

// resultUnits maps the geometry API's signatures to per-result unit tags.
func resultUnits(fn *types.Func) []unit {
	if fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	switch {
	case strings.HasSuffix(path, "internal/geom"):
		switch fn.Name() {
		case "Dist2":
			return []unit{unitDist2}
		case "Dist", "MinDist", "MaxDist", "MinDistRect", "MaxDistRect":
			return []unit{unitDist}
		}
	case strings.HasSuffix(path, "internal/rtree"):
		if fn.Name() == "Next" && recvTypeName(fn) == "NearestIter" {
			return []unit{unitUnknown, unitDist, unitUnknown}
		}
	}
	return nil
}

// fieldUnit resolves a struct field's unit: the well-known distance-bearing
// fields of the geometry/wire API, then per-package inference from writes.
func (du *distUnits) fieldUnit(field *types.Var) unit {
	if field.Pkg() != nil {
		path := field.Pkg().Path()
		if strings.HasSuffix(path, "internal/geom") && field.Name() == "R" {
			return unitDist
		}
		if strings.HasSuffix(path, "internal/wire") && field.Name() == "Radius" {
			return unitDist
		}
	}
	return du.inferred[field]
}
