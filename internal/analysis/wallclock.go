package analysis

import (
	"go/ast"
)

// wallclockName is referenced from the summary computation (allow-comment
// matching) as a const to avoid an initialization cycle through the Analyzer.
const wallclockName = "wallclock"

// WallClock flags wall-clock and global-rand reads reachable from the
// deterministic packages — internal/core, internal/parallel, internal/wire.
// Those packages define the replayable state machine: the journal replay,
// snapshot round-trip and sharded-vs-single bit-identity proofs all assume
// their behavior is a function of the inputs alone. time.Now or a global
// math/rand draw anywhere on their call paths silently breaks that.
//
// Two report shapes:
//
//   - a direct call in a protected package to time.Now/Since/Until/Tick,
//     a timer/ticker constructor, or a package-level math/rand function;
//   - a call from a protected package into a non-protected module function
//     whose summary is clock/rand tainted (the chain is summarized, so one
//     finding at the boundary call, not one per transitive site).
//
// Deliberate uses — the observability histograms, chaos injection, CLI
// progress — carry `//lint:allow wallclock <reason>`. The allow both
// suppresses the direct finding and stops the taint from entering the
// summaries, so callers of an annotated helper stay clean.
var WallClock = &Analyzer{
	Name:      wallclockName,
	Doc:       "flags time.Now/global-rand reads reachable from the deterministic core/parallel/wire packages",
	RunModule: runWallClock,
}

// wallClockProtected lists the deterministic packages' path suffixes.
var wallClockProtected = []string{"internal/core", "internal/parallel", "internal/wire"}

func runWallClock(mp *ModulePass) {
	st := ipaFor(mp.Pkgs)
	moduleName := moduleNameOf(mp.Pkgs)
	for _, comp := range st.cg.Comps {
		for _, id := range comp {
			node := st.cg.Nodes[id]
			if node == nil || !protectedPkg(node.Pkg.Path, moduleName, wallClockProtected) {
				continue
			}
			checkWallClock(mp, st, node, moduleName)
		}
	}
}

func checkWallClock(mp *ModulePass, st *ipa, node *CGNode, moduleName string) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case isWallClockCall(fn):
			mp.Reportf(node.Pkg, call.Pos(),
				"wall-clock read (time.%s) in deterministic package %s: output must be a function of inputs alone", fn.Name(), node.Pkg.Path)
		case isGlobalRandCall(fn):
			mp.Reportf(node.Pkg, call.Pos(),
				"global math/rand draw (%s) in deterministic package %s: seed a local Source instead", fn.Name(), node.Pkg.Path)
		default:
			// Boundary call: a non-protected module callee whose summary is
			// tainted. Calls within the protected set are skipped — the
			// callee's own direct sites are already reported there.
			if recvInterface(fn) != nil {
				return true
			}
			id := funcID(fn)
			callee := st.cg.Nodes[id]
			if callee == nil || protectedPkg(callee.Pkg.Path, moduleName, wallClockProtected) {
				return true
			}
			s := st.summaries[id]
			if s == nil {
				return true
			}
			if s.WallClock {
				mp.Reportf(node.Pkg, call.Pos(),
					"call into %s reaches a wall-clock read from deterministic package %s", id, node.Pkg.Path)
			} else if s.GlobalRand {
				mp.Reportf(node.Pkg, call.Pos(),
					"call into %s reaches a global math/rand draw from deterministic package %s", id, node.Pkg.Path)
			}
		}
		return true
	})
}
