// Package analysis is a self-contained static-analysis framework for this
// repository, built only on the standard library's go/ast, go/parser and
// go/types packages (the repo is deliberately zero-dependency). It mirrors a
// small slice of golang.org/x/tools/go/analysis: an Analyzer inspects
// type-checked packages — one at a time (Run) or the whole module at once
// (RunModule, for cross-package properties like the lock-order graph) — and
// reports Diagnostics, and the driver (cmd/srb-lint) applies suppression
// comments before printing.
//
// The analyzers themselves encode project-specific correctness rules of the
// safe-region monitoring framework. The syntactic checks: exact float
// comparison (floatcmp), mutex re-entry and prober callbacks (lockreentry),
// escaping internal slices (sliceescape), untracked goroutines
// (bareGoroutine), and undocumented packages or exported declarations
// (missingdoc). The flow-sensitive checks, built on the CFG/dataflow
// engine in cfg.go and dataflow.go: lock-acquisition-order cycles
// (lockorder), dropped error values (errdrop), blocking network operations
// without a deadline (ctxdeadline), and distance vs squared-distance unit
// mixing (distunits). The interprocedural checks, built on the module call
// graph and bottom-up function summaries in callgraph.go and summary.go: map
// iteration order reaching ordered sinks (maporder), wall-clock/global-rand
// reads reaching the deterministic packages (wallclock), allocation sites
// reachable from //srb:hotpath roots against a checked-in baseline
// (allochot), and writes performed under ParallelMonitor's read lock
// (rwpurity). The contract checks, combining the call graph, the CFG engine
// and the type checker's constant information: channel lifecycle — sends
// without receivers, receive-side or double closes, blocking channel
// operations under a mutex (chanlife); goroutine termination — infinite
// loops in the long-running surfaces with no channel/context/error-gated
// exit (goroleak); protocol exhaustiveness — wire and journal string
// constants unhandled in dispatch switches or never produced (protodrift);
// and atomic/plain access mixing on the same field (atomicmix). See the
// individual files for the rules, DESIGN.md §8 for the dataflow engine,
// §12 for the interprocedural layer and §13 for the contract checks.
//
// # Suppressions
//
// A finding is suppressed by a comment of the form
//
//	//lint:allow <name>[,<name>...] [reason]
//
// placed either on the same line as the offending expression or on the line
// directly above it. Suppressed findings are counted but do not fail the run.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings covered by a //lint:allow comment.
	Suppressed bool
}

// String formats the finding as file:line:col: analyzer: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path of the package under analysis (for package
	// main it is the directory-derived path, not "main").
	PkgPath string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static check. Exactly one of Run (per-package) and
// RunModule (whole-module, e.g. the cross-package lock-order graph) is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// ModulePass carries every analyzed package through a module-scope analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos, resolved against pkg's file set.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order: the syntactic checks,
// then the flow-sensitive ones, then the interprocedural (call-graph +
// summary) checks, then the concurrency/wire contract checks; see
// callgraph.go and summary.go for the machinery the latter two tiers share.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, LockReentry, SliceEscape, BareGoroutine,
		MissingDoc, LockOrder, ErrDrop, CtxDeadline, DistUnits,
		MapOrder, WallClock, AllocHot, RWPurity,
		ChanLife, GoroLeak, ProtoDrift, AtomicMix}
}

// ByName resolves a comma-separated analyzer list; empty selects all.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage applies the analyzers to one loaded package and returns the
// findings with suppressions resolved, sorted by position. Module-scope
// analyzers in the list see a one-package module.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return Run([]*Package{pkg}, analyzers)
}

// Run applies the analyzers to the loaded packages: per-package analyzers to
// each package in turn, module-scope analyzers once over the whole set. The
// findings come back with suppressions resolved, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{Analyzer: a, Pkgs: pkgs, diags: &diags})
	}
	for _, pkg := range pkgs {
		applySuppressions(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// allowKey addresses one source line for suppression lookup.
type allowKey struct {
	file string
	line int
}

// allowIndex maps every line covered by a //lint:allow comment (the comment's
// own line and the line directly below it) to the set of analyzer names it
// suppresses. Shared by applySuppressions and the interprocedural summary
// computation (which must not propagate allow-annotated wall-clock facts).
func allowIndex(pkg *Package) map[allowKey]map[string]bool {
	allowed := make(map[allowKey]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := allowKey{pos.Filename, line}
					if allowed[k] == nil {
						allowed[k] = make(map[string]bool)
					}
					for _, n := range names {
						allowed[k][n] = true
					}
				}
			}
		}
	}
	return allowed
}

// applySuppressions marks findings covered by //lint:allow comments. The
// comment suppresses matching analyzers on its own line and on the line
// immediately below it (so both trailing and preceding placements work).
func applySuppressions(pkg *Package, diags []Diagnostic) {
	allowed := allowIndex(pkg)
	for i := range diags {
		set := allowed[allowKey{diags[i].Pos.Filename, diags[i].Pos.Line}]
		if set != nil && (set[diags[i].Analyzer] || set["all"]) {
			diags[i].Suppressed = true
		}
	}
}

// parseAllow extracts the analyzer names from a //lint:allow comment.
func parseAllow(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "lint:allow") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
	if rest == "" {
		return nil, false
	}
	list := strings.Fields(rest)[0]
	names := strings.Split(list, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names, true
}
