package analysis

import (
	"strings"
	"testing"
)

func TestLockOrderCycle(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}
`)
	diags := RunPackage(pkg, []*Analyzer{LockOrder})
	wantLines(t, diags, []int{13, 20}, nil)
	for _, d := range diags {
		if !strings.Contains(d.Message, "cycle") {
			t.Errorf("message %q should mention the cycle", d.Message)
		}
	}
}

func TestLockOrderInterprocedural(t *testing.T) {
	// The a→b edge exists only through a call: viaCall holds a while calling
	// lockB, whose summary acquires b. rev acquires them directly in the
	// reverse order.
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) lockB() {
	p.b.Lock()
	p.b.Unlock()
}

func (p *pair) viaCall() {
	p.a.Lock()
	p.lockB()
	p.a.Unlock()
}

func (p *pair) rev() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{LockOrder}), []int{17, 23}, nil)
}

func TestLockOrderSelfLoop(t *testing.T) {
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type box struct{ mu sync.Mutex }

func (b *box) relock() {
	b.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	b.mu.Unlock()
}
`)
	diags := RunPackage(pkg, []*Analyzer{LockOrder})
	wantLines(t, diags, []int{9}, nil)
	if len(diags) == 1 && !strings.Contains(diags[0].Message, "self-deadlock") {
		t.Errorf("message %q should mention self-deadlock", diags[0].Message)
	}
}

func TestLockOrderSuppressedAndClean(t *testing.T) {
	// Same cycle as TestLockOrderCycle with both sites annotated: everything
	// suppressed. The consistent() pair acquires in one global order — clean.
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() //lint:allow lockorder fixture: deliberate reversed order
	p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() //lint:allow lockorder fixture: deliberate reversed order
	p.a.Unlock()
}

func (p *pair) consistent1() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) consistent2() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{LockOrder}), nil, []int{13, 20})
}

func TestLockOrderManualReleaseBreaksEdge(t *testing.T) {
	// Unlocking a before taking b (and vice versa) never holds both: no edge,
	// no cycle, even though the textual order is reversed between the two.
	pkg := loadSource(t, "srb/internal/fixture", `package fixture

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) one() {
	p.a.Lock()
	p.a.Unlock()
	p.b.Lock()
	p.b.Unlock()
}

func (p *pair) two() {
	p.b.Lock()
	p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{LockOrder}), nil, nil)
}
