package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockReentry guards the two documented deadlock hazards of the concurrent
// monitor surface:
//
//  1. Mutex re-entry: a method that acquires a sync.Mutex/RWMutex field of
//     its receiver and holds it to function end (the Lock + defer Unlock
//     idiom) must not subsequently call another method of the same receiver
//     that locks the same field — sync mutexes are not reentrant, so the
//     call path self-deadlocks. Methods that release the lock manually
//     before calling out (paired Lock/Unlock blocks) are not flagged; the
//     analyzer is deliberately defer-shaped rather than flow-sensitive.
//  2. Prober callbacks: a function passed as a Prober/ProberFunc is invoked
//     by the monitor while its operation (and, for ConcurrentMonitor, its
//     lock) is in flight; a callback that calls back into a Monitor or
//     ConcurrentMonitor method deadlocks or corrupts the in-progress
//     operation.
var LockReentry = &Analyzer{
	Name: "lockreentry",
	Doc:  "flags self-deadlocking mutex re-entry and prober callbacks that re-enter the monitor",
	Run:  runLockReentry,
}

func runLockReentry(pass *Pass) {
	decls := funcDecls(pass)
	locking := lockingMethods(pass)
	checkMutexReentry(pass, locking)
	checkProberCallbacks(pass, decls)
}

// lockKey identifies "method M of named type T locks mutex field F".
type lockKey struct {
	typ    *types.Named
	method string
}

// lockingMethods maps every method in the package that calls
// recv.<field>.Lock() / RLock() on a sync mutex field of its receiver to the
// set of fields it locks.
func lockingMethods(pass *Pass) map[lockKey]map[string]bool {
	out := make(map[lockKey]map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			named := namedOf(pass.Info.TypeOf(fd.Recv.List[0].Type))
			if named == nil {
				continue
			}
			fields := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a lock inside a closure is not taken by this call
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if field, ok := mutexMethodOnReceiver(pass, call, recv, "Lock", "RLock"); ok {
					fields[field] = true
				}
				return true
			})
			if len(fields) > 0 {
				out[lockKey{named, fd.Name.Name}] = fields
			}
		}
	}
	return out
}

// mutexMethodOnReceiver matches calls of the form recv.field.M() where M is
// one of the given mutex methods and field is a sync.Mutex or sync.RWMutex,
// returning the field name.
func mutexMethodOnReceiver(pass *Pass, call *ast.CallExpr, recv *ast.Ident, methods ...string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	match := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			match = true
			break
		}
	}
	if !match {
		return "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok || base.Name != recv.Name {
		return "", false // the locked value must be reached through the receiver
	}
	if !isSyncMutex(pass.Info.TypeOf(inner)) {
		return "", false
	}
	return inner.Sel.Name, true
}

func isSyncMutex(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkMutexReentry reports calls from a method holding a receiver mutex to
// function end (Lock + defer Unlock) to another method of the same receiver
// that locks an already-held field.
func checkMutexReentry(pass *Pass, locking map[lockKey]map[string]bool) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := recvIdent(fd)
			if recv == nil {
				continue
			}
			named := namedOf(pass.Info.TypeOf(fd.Recv.List[0].Type))
			if named == nil {
				continue
			}
			held := heldToEnd(pass, fd, recv)
			if len(held) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // closures run later, possibly without the lock
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || base.Name != recv.Name {
					return true
				}
				callee := locking[lockKey{named, sel.Sel.Name}]
				if callee == nil {
					return true
				}
				for field, lockPos := range held {
					if callee[field] && call.Pos() > lockPos {
						pass.Reportf(call.Pos(), "%s.%s re-enters %s.%s while holding %s.%s (sync mutexes are not reentrant; this self-deadlocks)",
							named.Obj().Name(), fd.Name.Name, named.Obj().Name(), sel.Sel.Name, recv.Name, field)
						return true
					}
				}
				return true
			})
		}
	}
}

// heldToEnd returns the receiver mutex fields a method acquires and holds for
// the remainder of the function — a recv.f.Lock() paired with a deferred
// recv.f.Unlock() — mapped to the position of the Lock call.
func heldToEnd(pass *Pass, fd *ast.FuncDecl, recv *ast.Ident) map[string]token.Pos {
	locked := make(map[string]token.Pos)
	deferred := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch s := n.(type) {
		case *ast.DeferStmt:
			if field, ok := mutexMethodOnReceiver(pass, s.Call, recv, "Unlock", "RUnlock"); ok {
				deferred[field] = true
			}
			return false
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if field, ok := mutexMethodOnReceiver(pass, call, recv, "Lock", "RLock"); ok {
					if _, seen := locked[field]; !seen {
						locked[field] = call.Pos()
					}
				}
			}
		}
		return true
	})
	out := make(map[string]token.Pos)
	for field, pos := range locked {
		if deferred[field] {
			out[field] = pos
		}
	}
	return out
}

// checkProberCallbacks flags prober implementations handed to the monitor
// that call back into Monitor/ConcurrentMonitor methods.
func checkProberCallbacks(pass *Pass, decls map[*types.Func]*ast.FuncDecl) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				if !isProberPosition(pass, call, i) {
					continue
				}
				if body := callbackBody(pass, decls, arg); body != nil {
					reportMonitorCalls(pass, body, arg)
				}
			}
			return true
		})
	}
}

// isProberPosition reports whether argument i of the call lands in a
// parameter (or conversion target) whose named type is Prober or ProberFunc.
func isProberPosition(pass *Pass, call *ast.CallExpr, i int) bool {
	// Conversion: ProberFunc(f).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return isProberType(tv.Type)
	}
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	if params == nil {
		return false
	}
	idx := i
	if sig.Variadic() && idx >= params.Len()-1 {
		idx = params.Len() - 1
	}
	if idx >= params.Len() {
		return false
	}
	return isProberType(params.At(idx).Type())
}

func isProberType(t types.Type) bool {
	name := typeName(t)
	return name == "Prober" || name == "ProberFunc"
}

// callbackBody resolves the function body of a prober argument: a literal
// closure, or a same-package function/method reference.
func callbackBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, arg ast.Expr) ast.Node {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return a.Body
	case *ast.CallExpr:
		// Nested conversion like ProberFunc(func(...) ...).
		if tv, ok := pass.Info.Types[a.Fun]; ok && tv.IsType() && len(a.Args) == 1 {
			return callbackBody(pass, decls, a.Args[0])
		}
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[a].(*types.Func); ok {
			if fd := decls[fn]; fd != nil && fd.Body != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[a.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil && fd.Body != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// reportMonitorCalls flags calls to Monitor/ConcurrentMonitor methods inside
// a prober callback body.
func reportMonitorCalls(pass *Pass, body ast.Node, arg ast.Expr) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvName := typeName(pass.Info.TypeOf(sel.X))
		if recvName == "Monitor" || recvName == "ConcurrentMonitor" {
			pass.Reportf(call.Pos(), "prober callback calls %s.%s: probers run while the monitor operation (and lock) is in flight and must not re-enter the monitor", recvName, sel.Sel.Name)
		}
		return true
	})
}
