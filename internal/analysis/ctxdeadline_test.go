package analysis

import (
	"strings"
	"testing"
)

// The ctxdeadline fixture lives under a cmd/ path (the analyzer only runs on
// cmd/ and internal/remote packages) and models the wire surface with a local
// Codec type and a connection exposing SetReadDeadline.
const ctxFixture = `package fixture

import "time"

type Codec struct{}

func (c *Codec) Recv() (int, error) { return 0, nil }

type conn struct{}

func (conn) SetReadDeadline(t time.Time) error { return nil }

func bad(c *Codec) {
	_, _ = c.Recv()
}

func armed(c *Codec, cn conn) {
	_ = cn.SetReadDeadline(time.Now())
	_, _ = c.Recv()
}

func partial(c *Codec, cn conn, ok bool) {
	if ok {
		_ = cn.SetReadDeadline(time.Now())
	}
	_, _ = c.Recv()
}

func timerArmed(c *Codec) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	_, _ = c.Recv()
}

func suppressed(c *Codec) {
	_, _ = c.Recv() //lint:allow ctxdeadline fixture: loop bounded elsewhere
}
`

func TestCtxDeadline(t *testing.T) {
	pkg := loadSource(t, "srb/cmd/fixture", ctxFixture)
	diags := RunPackage(pkg, []*Analyzer{CtxDeadline})
	// bad: unarmed on the only path. partial: unarmed when ok is false (the
	// must-analysis join). armed/timerArmed: clean. suppressed: annotated.
	wantLines(t, diags, []int{14, 26}, []int{36})
	for _, d := range diags {
		if !d.Suppressed && !strings.Contains(d.Message, "no deadline or timeout armed") {
			t.Errorf("message %q should describe the missing deadline", d.Message)
		}
	}
}

func TestCtxDeadlineScopedToNetworkPackages(t *testing.T) {
	// The same source under a core-algorithm path is out of scope: nothing
	// there does network IO, and in-process Recv-shaped methods are fine.
	pkg := loadSource(t, "srb/internal/fixture", ctxFixture)
	wantLines(t, RunPackage(pkg, []*Analyzer{CtxDeadline}), nil, nil)
}
