package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RWPurity turns DESIGN.md's concurrency contract into a checked invariant:
// code running under an RWMutex read lock (ParallelMonitor's concurrent
// Results/SafeRegion/Stats/SaveSnapshot surface) must be write-free. A write
// slipping into an RLock region races with every other concurrent reader.
//
// For each function that acquires an RLock, a may-analysis over the CFG
// tracks whether the read lock can be held at each node (a deferred RUnlock
// never clears it, matching the defer idiom). While held, the analyzer flags:
//
//   - direct writes to receiver-reachable or package-level state;
//   - calls to module functions whose summary writes its receiver (when the
//     receiver expression is rooted in our receiver or a global), writes its
//     parameters (when an argument is so rooted), or writes globals;
//   - calls that can't be summarized — interface methods, stored function
//     values, non-module methods on receiver-rooted values (mutex ops
//     excepted) — conservatively, since an unknown callee may mutate.
//
// Writes to locals (the collect-then-sort idiom, building return copies) are
// exactly what read paths should do and stay clean.
var RWPurity = &Analyzer{
	Name:      "rwpurity",
	Doc:       "flags writes to shared state while an RWMutex read lock is held",
	RunModule: runRWPurity,
}

func runRWPurity(mp *ModulePass) {
	st := ipaFor(mp.Pkgs)
	ids := make([]string, 0, len(st.cg.Nodes))
	for id := range st.cg.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		checkRWPurity(mp, st, st.cg.Nodes[id])
	}
}

// rlockKind classifies a call as a read-lock acquire/release on a
// sync.RWMutex, or neither.
type rlockKind int

const (
	rlockNone rlockKind = iota
	rlockAcquire
	rlockRelease
)

func rlockMethodKind(info *types.Info, call *ast.CallExpr) rlockKind {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return rlockNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || typeName(sig.Recv().Type()) != "RWMutex" {
		return rlockNone
	}
	switch fn.Name() {
	case "RLock", "TryRLock":
		return rlockAcquire
	case "RUnlock":
		return rlockRelease
	}
	return rlockNone
}

// rheld is the dataflow fact: may the read lock be held here?
type rheld bool

func (r rheld) Equal(o Fact) bool {
	t, ok := o.(rheld)
	return ok && r == t
}

func joinRHeld(a, b Fact) Fact { return rheld(bool(a.(rheld)) || bool(b.(rheld))) }

func checkRWPurity(mp *ModulePass, st *ipa, node *CGNode) {
	info := node.Pkg.Info

	// Cheap pre-filter: only functions that RLock somewhere need the flow.
	usesRLock := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && rlockMethodKind(info, call) == rlockAcquire {
			usesRLock = true
			return false
		}
		return true
	})
	if !usesRLock {
		return
	}

	derived := rootSets(node)
	// findings dedupes across solver iterations (the transfer function runs
	// until fixpoint); reported in position order afterwards.
	findings := make(map[token.Pos]string)

	checkNode := func(n ast.Node, held bool) bool /* still held */ {
		stillHeld := held
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // separate execution context
			case *ast.GoStmt:
				return false // runs after we may have released
			case *ast.DeferStmt:
				return false // deferred RUnlock runs at exit: lock stays held
			case *ast.AssignStmt:
				if !stillHeld {
					return true
				}
				for _, lhs := range x.Lhs {
					if k := lhsWriteRoots(info, derived, lhs); k&(fromRecv|fromGlobal) != 0 {
						findings[lhs.Pos()] = "write to shared state while the RWMutex read lock is held (races with concurrent readers)"
					}
				}
			case *ast.IncDecStmt:
				if !stillHeld {
					return true
				}
				if k := lhsWriteRoots(info, derived, x.X); k&(fromRecv|fromGlobal) != 0 {
					findings[x.Pos()] = "write to shared state while the RWMutex read lock is held (races with concurrent readers)"
				}
			case *ast.CallExpr:
				switch rlockMethodKind(info, x) {
				case rlockAcquire:
					stillHeld = true
					return true
				case rlockRelease:
					stillHeld = false
					return true
				}
				if !stillHeld || isConversion(info, x) {
					return true
				}
				if b := builtinName(info, x); b != "" {
					if (b == "delete" || b == "copy" || b == "append") && len(x.Args) > 0 {
						if k := exprRoots(info, derived, x.Args[0]); k&(fromRecv|fromGlobal) != 0 {
							findings[x.Pos()] = "builtin " + b + " mutates shared state while the RWMutex read lock is held"
						}
					}
					return true
				}
				fn := calleeFunc(info, x)
				if fn == nil {
					// Stored function value: unknown effects.
					if k := exprRoots(info, derived, x); k&(fromRecv|fromGlobal) != 0 {
						findings[x.Pos()] = "dynamic call on shared state while the RWMutex read lock is held (callee may mutate it)"
					}
					return true
				}
				if mutexMethodKind(fn) != mutexNone {
					return true // lock plumbing itself
				}
				if recvInterface(fn) != nil {
					if k := exprRoots(info, derived, x); k&(fromRecv|fromGlobal) != 0 {
						findings[x.Pos()] = "interface call on shared state while the RWMutex read lock is held (dynamic callee may mutate it)"
					}
					return true
				}
				if s := st.summaries[funcID(fn)]; s != nil {
					if s.WritesGlobal {
						findings[x.Pos()] = "call to " + funcID(fn) + " writes package-level state while the RWMutex read lock is held"
						return true
					}
					if s.WritesReceiver {
						if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
							if k := exprRoots(info, derived, sel.X); k&(fromRecv|fromGlobal) != 0 {
								findings[x.Pos()] = "call to " + funcID(fn) + " mutates its receiver while the RWMutex read lock is held"
								return true
							}
						}
					}
					if s.WritesParams {
						for _, arg := range x.Args {
							if k := exprRoots(info, derived, arg); k&(fromRecv|fromGlobal) != 0 {
								findings[x.Pos()] = "call to " + funcID(fn) + " mutates shared state passed as an argument while the RWMutex read lock is held"
								return true
							}
						}
					}
					return true
				}
				// Non-module method on shared state: unknown effects.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						if k := exprRoots(info, derived, sel.X); k&(fromRecv|fromGlobal) != 0 {
							findings[x.Pos()] = "call to external method " + funcID(fn) + " on shared state while the RWMutex read lock is held"
						}
					}
				}
			}
			return true
		})
		return stillHeld
	}

	cfg := NewCFG(node.Decl.Body)
	Solve(cfg, FlowProblem{
		Entry: rheld(false),
		Join:  joinRHeld,
		Transfer: func(b *Block, in Fact) Fact {
			held := bool(in.(rheld))
			for _, n := range b.Nodes {
				held = checkNode(n, held)
			}
			return rheld(held)
		},
	})

	positions := make([]token.Pos, 0, len(findings))
	for pos := range findings {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		mp.Reportf(node.Pkg, pos, "%s", findings[pos])
	}
}
