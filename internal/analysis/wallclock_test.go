package analysis

import "testing"

func TestWallClockDirect(t *testing.T) {
	pkg := loadSource(t, "srb/internal/core", `package core

import (
	"math/rand"
	"time"
)

func bad() time.Time { return time.Now() }

func badRand() float64 { return rand.Float64() }

func seeded(src rand.Source) float64 { return rand.New(src).Float64() }

func allowed() time.Time {
	return time.Now() //lint:allow wallclock latency instrumentation under test
}

func pure(t time.Time) time.Time { return t.Add(time.Second) }
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{WallClock}), []int{8, 10}, []int{15})
}

func TestWallClockUnprotectedPackage(t *testing.T) {
	pkg := loadSource(t, "srb/internal/obs", `package obs

import "time"

func stamp() time.Time { return time.Now() }
`)
	wantLines(t, RunPackage(pkg, []*Analyzer{WallClock}), nil, nil)
}

// TestWallClockBoundary exercises the interprocedural report shape: a
// protected package calling into a non-protected module package whose
// summary is clock-tainted is flagged once, at the boundary call.
func TestWallClockBoundary(t *testing.T) {
	pkgs := loadModuleSource(t, []fixturePkg{
		{path: "srb/internal/obs", src: `package obs

import "time"

// Stamp reads the wall clock (no allow: the taint must propagate).
func Stamp() time.Time { return time.Now() }

// Span is a deliberate, annotated clock read: the allow keeps it out of
// the summaries, so callers stay clean.
func Span() time.Time {
	return time.Now() //lint:allow wallclock trace timestamps are wall-clock by design
}
`},
		{path: "srb/internal/core", src: `package core

import (
	"time"

	"srb/internal/obs"
)

func tainted() time.Time { return obs.Stamp() }

func clean() time.Time { return obs.Span() }
`},
	})
	var diags []Diagnostic
	for _, d := range Run(pkgs, []*Analyzer{WallClock}) {
		// The obs fixture's own direct sites are not in a protected package
		// and produce nothing; everything reported must be in core.
		diags = append(diags, d)
	}
	wantLines(t, diags, []int{9}, nil)
	if len(diags) == 1 && diags[0].Message != "call into srb/internal/obs.Stamp reaches a wall-clock read from deterministic package srb/internal/core" {
		t.Errorf("unexpected boundary message: %s", diags[0].Message)
	}
}
