package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicmix.go flags state that is accessed both through sync/atomic and
// through plain loads/stores. Mixing the two voids the atomicity guarantee:
// the plain access races the atomic ones, and the race detector only catches
// it when both sides actually collide under test. The classic drift is a
// counter introduced as atomic (incremented from goroutines) that later
// grows a plain `s.n = 0` reset or an unguarded read in a stats snapshot.
//
// Tracked state is identified like lockorder's mutexes: "pkg.Type.field" for
// a struct field passed by address to an atomic function, "pkg.var" for a
// package-level variable. Locals are skipped — an atomically-updated local
// (the work-stealing counter in internal/parallel) is visible to exactly the
// goroutines that capture it, and its plain initialization `var next int64`
// is inherent. The typed atomics (atomic.Int64 & friends) are method-only
// and cannot be mixed, so they need no checking.
//
// Module-wide, two passes: collect every field/global whose address reaches
// a sync/atomic call, then flag every access to those keys that is not
// itself the operand of an atomic call. Reads under a mutex that happen to
// be safe by protocol still count — the point is one discipline per field —
// and carry a //lint:allow atomicmix annotation saying why.
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "flags fields accessed both via sync/atomic and plain loads/stores across the module",
	RunModule: runAtomicMix,
}

// atomicSite is one sync/atomic access to a tracked key.
type atomicSite struct {
	pkg *Package
	pos token.Pos
}

func runAtomicMix(mp *ModulePass) {
	// Pass 1: keys accessed atomically, and the exact operand nodes (the X
	// in &X) that are legitimate atomic accesses.
	atomicKeys := make(map[string]atomicSite) // key → first atomic site
	operand := make(map[ast.Expr]bool)
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // typed atomics are method-only and unmixable
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					target := ast.Unparen(u.X)
					key := atomicKeyOf(pkg, target)
					if key == "" {
						continue
					}
					operand[target] = true
					if _, seen := atomicKeys[key]; !seen {
						atomicKeys[key] = atomicSite{pkg, u.X.Pos()}
					}
				}
				return true
			})
		}
	}
	if len(atomicKeys) == 0 {
		return
	}

	// Pass 2: plain accesses to the same keys.
	for _, pkg := range mp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok || operand[e] {
					return true
				}
				switch e.(type) {
				case *ast.SelectorExpr, *ast.Ident:
				default:
					return true
				}
				key := atomicKeyOf(pkg, e)
				if key == "" {
					return true
				}
				site, tracked := atomicKeys[key]
				if !tracked {
					return true
				}
				first := site.pkg.Fset.Position(site.pos)
				mp.Reportf(pkg, e.Pos(),
					"plain access to %s, which is accessed via sync/atomic at %s:%d: mixing atomic and non-atomic access voids the atomicity guarantee",
					key, first.Filename, first.Line)
				// A selector's base identifier must not re-trigger on itself.
				return false
			})
		}
	}
}

// atomicKeyOf names the abstract storage an expression denotes, for mix
// tracking: a field of a named type or a package-level variable. Locals,
// map/slice elements and anything else return "".
func atomicKeyOf(pkg *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
				if obj := pkg.Info.Uses[x.Sel]; obj != nil && isPackageVar(obj) {
					return obj.Pkg().Path() + "." + obj.Name()
				}
				return ""
			}
		}
		// Only a variable field counts (methods and qualified funcs do not).
		if obj := pkg.Info.Uses[x.Sel]; obj != nil {
			if _, isVar := obj.(*types.Var); !isVar {
				return ""
			}
		}
		if named := namedOf(pkg.Info.TypeOf(x.X)); named != nil {
			return qualifiedTypeName(named) + "." + x.Sel.Name
		}
	case *ast.Ident:
		// Uses only: the declaration of a package variable is not an access.
		if obj := pkg.Info.Uses[x]; obj != nil && isPackageVar(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}
