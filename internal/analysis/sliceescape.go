package analysis

import (
	"go/ast"
	"go/types"
)

// SliceEscape flags the two aliasing mistakes that corrupt multi-index
// bookkeeping when a caller mutates what it was handed (or handed over):
//
//  1. An exported function or method returning an internal mutable slice —
//     a receiver field, or an element of a receiver field — without copying.
//     Callers then share the monitor's backing array (e.g. a query's result
//     list or an R*-tree entry slice) and can corrupt it in place.
//  2. An exported method storing a caller-provided slice parameter directly
//     into a receiver field, so later caller-side mutation aliases internal
//     state.
//
// Deliberate ownership transfers and documented read-only returns carry a
// //lint:allow sliceescape annotation.
var SliceEscape = &Analyzer{
	Name: "sliceescape",
	Doc:  "flags exported functions returning or storing internal mutable slices without a copy",
	Run:  runSliceEscape,
}

func runSliceEscape(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isExported(pass, fd) {
				continue
			}
			recv := recvIdent(fd)
			params := paramObjs(pass, fd)
			walkShallow(fd.Body, func(n ast.Node) {
				switch st := n.(type) {
				case *ast.ReturnStmt:
					for _, res := range st.Results {
						checkEscapingReturn(pass, fd, recv, res)
					}
				case *ast.AssignStmt:
					checkAliasingStore(pass, fd, recv, params, st)
				}
			})
		}
	}
}

// paramObjs collects the slice-typed parameter objects of a function.
func paramObjs(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	return out
}

// walkShallow visits the statements of a function body without descending
// into nested function literals (their returns belong to the closure, not
// the enclosing function).
func walkShallow(body ast.Node, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkEscapingReturn flags `return recv.field` and `return recv.field[i]`
// results of slice type.
func checkEscapingReturn(pass *Pass, fd *ast.FuncDecl, recv *ast.Ident, res ast.Expr) {
	res = ast.Unparen(res)
	if _, ok := pass.Info.TypeOf(res).Underlying().(*types.Slice); !ok {
		return
	}
	expr := res
	depth := 0
	for {
		if ix, ok := expr.(*ast.IndexExpr); ok {
			expr = ast.Unparen(ix.X)
			depth++
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if recv == nil || !isIdentNamed(sel.X, recv.Name) {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	what := "internal slice"
	if depth > 0 {
		what = "element of internal slice field"
	}
	pass.Reportf(res.Pos(), "%s returns %s %s.%s without a copy; callers can mutate internal state (append([]T(nil), s...) or annotate with //lint:allow sliceescape)",
		fd.Name.Name, what, recv.Name, sel.Sel.Name)
}

// checkAliasingStore flags `recv.field = param` where param is a slice-typed
// parameter of the function.
func checkAliasingStore(pass *Pass, fd *ast.FuncDecl, recv *ast.Ident, params map[types.Object]bool, st *ast.AssignStmt) {
	if recv == nil {
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || !isIdentNamed(sel.X, recv.Name) {
			continue
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		rhs, ok := ast.Unparen(st.Rhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[rhs]
		if obj == nil || !params[obj] {
			continue
		}
		pass.Reportf(st.Pos(), "%s stores caller-provided slice %q into %s.%s without a copy; later caller mutation aliases internal state (copy first or annotate with //lint:allow sliceescape)",
			fd.Name.Name, rhs.Name, recv.Name, sel.Sel.Name)
	}
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}
