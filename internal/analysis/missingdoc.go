package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// MissingDoc enforces the documentation contract of OPERATIONS.md and
// METRICS.md readers: every package carries a package-level doc comment, and
// every exported top-level declaration (funcs, methods on exported receivers,
// types, and var/const specs outside a documented group) carries a doc
// comment. Test files are exempt, and a documented declaration group
// (`// doc` above a parenthesized var/const/type block) covers its members.
// The check is deliberately syntactic — a one-line `// Name does X.` passes —
// because the gate exists to keep godoc browsable, not to grade prose.
var MissingDoc = &Analyzer{
	Name: "missingdoc",
	Doc:  "flags packages and exported declarations lacking doc comments",
	Run:  runMissingDoc,
}

func runMissingDoc(pass *Pass) {
	// Package doc: at least one non-test file must carry it. Report at the
	// package clause of the alphabetically first file so the finding position
	// is stable across load orders.
	var first *ast.File
	var firstName string
	hasPkgDoc := false
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if f.Doc != nil {
			hasPkgDoc = true
		}
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	if first != nil && !hasPkgDoc {
		pass.Reportf(first.Package, "package %s has no package-level doc comment", pass.Pkg.Name())
	}

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil || !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !receiverExported(d.Recv) {
					continue
				}
				pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // group doc covers every spec
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil {
							continue
						}
						names := exportedNames(s.Names)
						if len(names) > 0 {
							pass.Reportf(s.Names[0].Pos(), "exported %s %s has no doc comment", d.Tok, strings.Join(names, ", "))
						}
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver names an exported
// type; methods on unexported types are invisible in godoc and exempt.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func exportedNames(idents []*ast.Ident) []string {
	var out []string
	for _, id := range idents {
		if id.IsExported() {
			out = append(out, id.Name)
		}
	}
	sort.Strings(out)
	return out
}
