package query

import (
	"testing"

	"srb/internal/geom"
)

func TestRangeQuarantine(t *testing.T) {
	q := NewRange(1, geom.R(0.2, 0.2, 0.4, 0.4))
	if q.QuarantineBBox() != geom.R(0.2, 0.2, 0.4, 0.4) {
		t.Fatalf("bbox = %v", q.QuarantineBBox())
	}
	if !q.InQuarantine(geom.Pt(0.3, 0.3)) || q.InQuarantine(geom.Pt(0.5, 0.3)) {
		t.Fatal("range quarantine membership wrong")
	}
}

func TestKNNQuarantine(t *testing.T) {
	q := NewKNN(2, geom.Pt(0.5, 0.5), 3, true)
	q.QRadius = 0.1
	if !q.InQuarantine(geom.Pt(0.55, 0.5)) || q.InQuarantine(geom.Pt(0.65, 0.5)) {
		t.Fatal("kNN quarantine membership wrong")
	}
	bb := q.QuarantineBBox()
	if bb != geom.R(0.4, 0.4, 0.6, 0.6) {
		t.Fatalf("bbox = %v", bb)
	}
}

func TestAffectedRange(t *testing.T) {
	q := NewRange(1, geom.R(0.2, 0.2, 0.4, 0.4))
	in := geom.Pt(0.3, 0.3)
	out := geom.Pt(0.7, 0.7)
	if !q.Affected(out, in) || !q.Affected(in, out) {
		t.Fatal("crossing the boundary must affect a range query")
	}
	if q.Affected(in, in) || q.Affected(out, out) {
		t.Fatal("staying on one side must not affect a range query")
	}
}

func TestAffectedKNNOrderSensitivity(t *testing.T) {
	in := geom.Pt(0.52, 0.5)
	in2 := geom.Pt(0.48, 0.5)
	out := geom.Pt(0.9, 0.9)

	sens := NewKNN(1, geom.Pt(0.5, 0.5), 2, true)
	sens.QRadius = 0.1
	if !sens.Affected(in, in2) {
		t.Fatal("order-sensitive: movement inside quarantine may reorder results")
	}
	if sens.Affected(out, geom.Pt(0.91, 0.9)) {
		t.Fatal("order-sensitive: both outside is unaffected")
	}

	insens := NewKNN(2, geom.Pt(0.5, 0.5), 2, false)
	insens.QRadius = 0.1
	// Both-inside counts as affected for every kNN kind in this
	// implementation: the server uses it to detect and repair a non-result
	// engulfed by a quarantine circle that grew over it (see Affected docs).
	if !insens.Affected(in, in2) {
		t.Fatal("order-insensitive: in-quarantine movement must reach the server for repair")
	}
	if !insens.Affected(in, out) {
		t.Fatal("order-insensitive: exiting quarantine is affected")
	}
	if insens.Affected(out, geom.Pt(0.91, 0.9)) {
		t.Fatal("order-insensitive: both outside is unaffected")
	}
}

func TestSetResultsAndEquality(t *testing.T) {
	q := NewKNN(1, geom.Pt(0, 0), 3, true)
	q.SetResults([]uint64{5, 2, 9})
	if !q.InResult[5] || !q.InResult[2] || !q.InResult[9] || q.InResult[7] {
		t.Fatal("membership index wrong")
	}
	if !q.ResultEquals([]uint64{5, 2, 9}) {
		t.Fatal("identical sequence must match")
	}
	if q.ResultEquals([]uint64{2, 5, 9}) {
		t.Fatal("order-sensitive: permutation must not match")
	}
	if q.ResultEquals([]uint64{5, 2}) {
		t.Fatal("length mismatch")
	}

	r := NewRange(2, geom.R(0, 0, 1, 1))
	r.SetResults([]uint64{5, 2, 9})
	if !r.ResultEquals([]uint64{9, 5, 2}) {
		t.Fatal("range results are sets: permutation matches")
	}
	if r.ResultEquals([]uint64{9, 5, 7}) {
		t.Fatal("different member must not match")
	}

	oi := NewKNN(3, geom.Pt(0, 0), 3, false)
	oi.SetResults([]uint64{5, 2, 9})
	if !oi.ResultEquals([]uint64{9, 5, 2}) {
		t.Fatal("order-insensitive kNN compares sets")
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := NewKNN(1, geom.Pt(0, 0), 2, false)
	q.SetResults([]uint64{1, 2})
	c := q.Clone()
	c.SetResults([]uint64{3})
	if len(q.Results) != 2 || !q.InResult[1] {
		t.Fatal("clone mutated the original")
	}
}

func TestKindString(t *testing.T) {
	if KindRange.String() != "range" || KindKNN.String() != "knn" {
		t.Fatal("kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestNewKNNClampsK(t *testing.T) {
	q := NewKNN(1, geom.Pt(0, 0), 0, false)
	if q.K != 1 {
		t.Fatalf("K = %d, want clamp to 1", q.K)
	}
}
