// Package query defines the continuous spatial query model of the monitoring
// framework: range queries and (order-sensitive or order-insensitive) kNN
// queries, together with their quarantine areas (Section 3.3). The quarantine
// area of a query is a region such that, while every result object stays
// inside it and every non-result object stays outside it, the query's result
// cannot change.
package query

import (
	"fmt"

	"srb/internal/geom"
)

// ID identifies a registered query.
type ID uint64

// Kind discriminates the supported query types.
type Kind uint8

const (
	// KindRange monitors the set of objects inside a fixed rectangle.
	KindRange Kind = iota
	// KindKNN monitors the k nearest objects of a fixed query point.
	KindKNN
	// KindCircle monitors the set of objects within a fixed distance of a
	// fixed point (a circular range query — the "within-distance alert" shape
	// of proximity applications). It demonstrates the framework's generic
	// interface: its quarantine area is the circle itself, and its safe
	// regions reuse the kNN circle/complement constructions.
	KindCircle
)

// String returns the lowercase wire/CLI name of the kind.
func (k Kind) String() string {
	switch k {
	case KindRange:
		return "range"
	case KindKNN:
		return "knn"
	case KindCircle:
		return "circle"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Query is a registered continuous query plus the state the server maintains
// for it: current results and quarantine area.
type Query struct {
	ID   ID
	Kind Kind

	// Range query parameter.
	Rect geom.Rect
	// Aggregate marks a COUNT range query (the aggregate-query extension of
	// Section 8): membership is tracked internally exactly like a range
	// query, but only the cardinality of the result is reported.
	Aggregate bool

	// kNN query parameters.
	Point          geom.Point
	K              int
	OrderSensitive bool

	// Results holds the current result object IDs. For kNN queries the slice
	// is ordered by distance (nearest first); for range queries the order is
	// unspecified but deterministic.
	Results []uint64
	// InResult mirrors Results for O(1) membership tests.
	InResult map[uint64]bool

	// QRadius is the radius of the circular quarantine area of a kNN query.
	// Range queries use Rect as their quarantine area.
	QRadius float64
}

// NewRange constructs a range query over rect.
func NewRange(id ID, rect geom.Rect) *Query {
	return &Query{ID: id, Kind: KindRange, Rect: rect, InResult: map[uint64]bool{}}
}

// NewCountRange constructs an aggregate COUNT query over rect: the monitor
// maintains the number of objects inside the rectangle and reports only the
// count.
func NewCountRange(id ID, rect geom.Rect) *Query {
	q := NewRange(id, rect)
	q.Aggregate = true
	return q
}

// NewWithinDistance constructs a circular range query: the set of objects
// within radius of center.
func NewWithinDistance(id ID, center geom.Point, radius float64) *Query {
	return &Query{ID: id, Kind: KindCircle, Point: center, QRadius: radius, InResult: map[uint64]bool{}}
}

// NewKNN constructs a kNN query anchored at pt.
func NewKNN(id ID, pt geom.Point, k int, orderSensitive bool) *Query {
	if k < 1 {
		k = 1
	}
	return &Query{ID: id, Kind: KindKNN, Point: pt, K: k, OrderSensitive: orderSensitive, InResult: map[uint64]bool{}}
}

// QuarantineBBox returns the bounding rectangle of the quarantine area, the
// extent indexed by the grid query index.
func (q *Query) QuarantineBBox() geom.Rect {
	if q.Kind == KindRange {
		return q.Rect
	}
	return q.QuarantineCircle().BBox()
}

// Circle returns the fixed circle of a within-distance query.
func (q *Query) Circle() geom.Circle {
	return geom.Circle{Center: q.Point, R: q.QRadius}
}

// QuarantineCircle returns the circular quarantine area of a kNN query.
func (q *Query) QuarantineCircle() geom.Circle {
	return geom.Circle{Center: q.Point, R: q.QRadius}
}

// InQuarantine reports whether p lies inside the quarantine area.
func (q *Query) InQuarantine(p geom.Point) bool {
	if q.Kind == KindRange {
		return q.Rect.Contains(p)
	}
	return q.QuarantineCircle().Contains(p) // kNN quarantine or fixed circle
}

// Affected reports whether a location update moving an object from pLst to p
// may change this query's result (Section 3.3): for range queries the update
// is relevant when exactly one of the two points is inside the quarantine
// area; a kNN query is unaffected only when both are outside. (The paper
// exempts order-insensitive kNN from the both-inside case; we keep it so the
// server can detect and repair a non-result that was engulfed by a quarantine
// circle growing over it — the reevaluation is a no-op for results.)
func (q *Query) Affected(pLst, p geom.Point) bool {
	inNew := q.InQuarantine(p)
	inOld := q.InQuarantine(pLst)
	if q.Kind == KindKNN {
		return inNew || inOld
	}
	return inNew != inOld
}

// SetResults replaces the result list and membership index.
func (q *Query) SetResults(ids []uint64) {
	//lint:allow sliceescape ownership transfer: callers hand over ids and must not reuse it
	q.Results = ids
	q.InResult = make(map[uint64]bool, len(ids))
	for _, id := range ids {
		q.InResult[id] = true
	}
}

// ResultEquals reports whether other is the same result under this query's
// ordering semantics: order-sensitive kNN compares sequences, everything else
// compares sets.
func (q *Query) ResultEquals(other []uint64) bool {
	if len(q.Results) != len(other) {
		return false
	}
	if q.Kind == KindKNN && q.OrderSensitive {
		for i := range other {
			if q.Results[i] != other[i] {
				return false
			}
		}
		return true
	}
	for _, id := range other {
		if !q.InResult[id] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (used by schemes that need a private copy of the
// registered workload).
func (q *Query) Clone() *Query {
	c := *q
	c.Results = append([]uint64(nil), q.Results...)
	c.InResult = make(map[uint64]bool, len(q.InResult))
	for id := range q.InResult {
		c.InResult[id] = true
	}
	return &c
}
