// Quickstart: register a range query and a kNN query over a handful of
// moving objects and watch the safe-region protocol at work — updates are
// sent only when an object leaves its safe region, yet the monitored results
// are always exact.
package main

import (
	"fmt"
	"math/rand"

	"srb"
)

func main() {
	// True object positions; the prober answers server probes from here.
	positions := map[uint64]srb.Point{}
	prober := srb.ProberFunc(func(id uint64) srb.Point { return positions[id] })

	// Result changes are pushed as they happen.
	mon := srb.NewMonitor(srb.Options{GridM: 10}, prober, func(u srb.ResultUpdate) {
		fmt.Printf("  -> query %d results changed: %v\n", u.Query, u.Results)
	})

	// Clients remember the safe region the server granted them.
	regions := map[uint64]srb.Rect{}
	deliver := func(ups []srb.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}

	rng := rand.New(rand.NewSource(7))
	for id := uint64(1); id <= 20; id++ {
		positions[id] = srb.Pt(rng.Float64(), rng.Float64())
		deliver(mon.AddObject(id, positions[id]))
	}

	results, ups, err := mon.RegisterRange(1, srb.R(0.40, 0.40, 0.60, 0.60))
	if err != nil {
		panic(err)
	}
	deliver(ups)
	fmt.Printf("range query 1 initial results: %v\n", results)

	results, ups, err = mon.RegisterKNN(2, srb.Pt(0.5, 0.5), 3, true)
	if err != nil {
		panic(err)
	}
	deliver(ups)
	fmt.Printf("kNN   query 2 initial results: %v (nearest first)\n", results)

	// Move the objects in small random steps. The client-side protocol: a
	// location update is sent if and only if the new position escapes the
	// object's safe region.
	updates := 0
	moves := 0
	for step := 0; step < 50; step++ {
		mon.SetTime(float64(step) * 0.1)
		for id := range positions {
			p := positions[id]
			np := srb.Pt(clamp(p.X+(rng.Float64()-0.5)*0.04), clamp(p.Y+(rng.Float64()-0.5)*0.04))
			positions[id] = np
			moves++
			if !regions[id].Contains(np) {
				updates++
				deliver(mon.Update(id, np))
			}
		}
	}

	stats := mon.Stats()
	fmt.Printf("\n%d position changes, but only %d location updates (%.1f%%), %d probes\n",
		moves, updates, 100*float64(updates)/float64(moves), stats.Probes)
	r1, _ := mon.Results(1)
	r2, _ := mon.Results(2)
	fmt.Printf("final results: range=%v knn=%v\n", r1, r2)
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
