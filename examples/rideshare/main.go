// Rideshare dispatch: continuous order-sensitive 3-NN monitoring.
//
// Riders open the app at fixed pickup points; the dispatcher continuously
// knows the three nearest drivers for each pickup, ordered by distance, so an
// incoming request is matched instantly without querying every driver. The
// monitor keeps the ranked lists exact while drivers transmit only on
// safe-region exits — the paper's location-aware dispatch scenario.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"srb"
	"srb/internal/mobility"
)

const (
	nDrivers = 500
	nPickups = 12
	steps    = 200
)

func main() {
	space := srb.R(0, 0, 1, 1)
	drivers := make([]*mobility.Waypoint, nDrivers)
	positions := make(map[uint64]srb.Point, nDrivers)
	starts := mobility.StartPositions(2026, nDrivers, space)
	for i := range drivers {
		drivers[i] = mobility.NewWaypoint(2026, uint64(i), space, 0.015, 0.3, starts[i])
		positions[uint64(i)] = starts[i]
	}

	rng := rand.New(rand.NewSource(5))
	pickups := make([]srb.Point, nPickups)
	for i := range pickups {
		pickups[i] = srb.Pt(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64())
	}

	reorders := 0
	mon := srb.NewMonitor(srb.Options{GridM: 16}, srb.ProberFunc(func(id uint64) srb.Point {
		return positions[id]
	}), func(u srb.ResultUpdate) { reorders++ })

	regions := make(map[uint64]srb.Rect, nDrivers)
	deliver := func(ups []srb.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}
	for i := 0; i < nDrivers; i++ {
		deliver(mon.AddObject(uint64(i), positions[uint64(i)]))
	}
	for i, p := range pickups {
		res, ups, err := mon.RegisterKNN(srb.QueryID(i+1), p, 3, true)
		if err != nil {
			panic(err)
		}
		deliver(ups)
		fmt.Printf("pickup %2d at (%.2f, %.2f): nearest drivers %v\n", i+1, p.X, p.Y, res)
	}

	updates := 0
	for step := 1; step <= steps; step++ {
		t := float64(step) * 0.05
		mon.SetTime(t)
		for i := 0; i < nDrivers; i++ {
			id := uint64(i)
			np := drivers[i].At(t)
			positions[id] = np
			if !regions[id].Contains(np) {
				updates++
				deliver(mon.Update(id, np))
			}
		}
	}

	stats := mon.Stats()
	fmt.Printf("\nafter %d steps: %d updates, %d probes, %d ranking changes pushed\n",
		steps, updates, stats.Probes, reorders)

	// Verify the final rankings against brute force.
	bad := 0
	for i, p := range pickups {
		got, _ := mon.Results(srb.QueryID(i + 1))
		want := brute3NN(positions, p)
		for j := range want {
			if got[j] != want[j] {
				bad++
				break
			}
		}
	}
	fmt.Printf("rankings exact for %d/%d pickups\n", nPickups-bad, nPickups)
}

func brute3NN(pos map[uint64]srb.Point, q srb.Point) []uint64 {
	type nd struct {
		id uint64
		d  float64
	}
	all := make([]nd, 0, len(pos))
	for id, p := range pos {
		all = append(all, nd{id, p.Dist(q)})
	}
	sort.Slice(all, func(i, j int) bool {
		//lint:allow floatcmp comparator tie-break: exact inequality guards the ID fallback
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	out := make([]uint64, 3)
	for i := 0; i < 3; i++ {
		out[i] = all[i].id
	}
	return out
}
