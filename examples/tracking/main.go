// Tracking over the network: the full client/server system of Figure 1.1.
//
// A monitoring server is started on a loopback TCP port; mobile clients
// connect and speak the wire protocol (hello, safe-region grants, probes,
// source-initiated updates), and an application server registers a mixed
// query workload and consumes the pushed result stream. The server runs with
// both Section 6 enhancements enabled (maximum speed and steady movement).
package main

import (
	"fmt"
	"sync"
	"time"

	"srb"
	"srb/internal/mobility"
	"srb/internal/remote"
)

const (
	nClients = 60
	steps    = 120
)

func main() {
	server, err := remote.NewServer("127.0.0.1:0", srb.Options{
		GridM:      12,
		MaxSpeed:   0.04, // 2·v̄ under the waypoint model below
		Steadiness: 0.5,
	})
	if err != nil {
		panic(err)
	}
	server.SetLogf(nil)
	go func() { _ = server.Serve() }()
	defer server.Close()
	fmt.Printf("monitoring server on %s\n", server.Addr())

	// Mobile clients with random-waypoint movement.
	space := srb.R(0, 0, 1, 1)
	starts := mobility.StartPositions(31, nClients, space)
	clients := make([]*remote.MobileClient, nClients)
	walkers := make([]*mobility.Waypoint, nClients)
	for i := range clients {
		walkers[i] = mobility.NewWaypoint(31, uint64(i), space, 0.02, 0.3, starts[i])
		c, err := remote.DialClient(server.Addr(), uint64(i), starts[i])
		if err != nil {
			panic(err)
		}
		clients[i] = c
		defer c.Close()
	}

	// Application server: one geofence and one 5-NN tracker.
	app, err := remote.DialApp(server.Addr())
	if err != nil {
		panic(err)
	}
	defer app.Close()

	time.Sleep(100 * time.Millisecond) // let all hellos land
	geofence, err := app.RegisterRange(1, srb.R(0.3, 0.3, 0.7, 0.7))
	if err != nil {
		panic(err)
	}
	nearest, err := app.RegisterKNN(2, srb.Pt(0.5, 0.5), 5, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("geofence initially: %d objects inside\n", len(geofence))
	fmt.Printf("5-NN of the center: %v\n", nearest)

	// Consume pushed result updates concurrently.
	var mu sync.Mutex
	pushes := 0
	go func() {
		for range app.Updates() {
			mu.Lock()
			pushes++
			mu.Unlock()
		}
	}()

	// Drive the fleet.
	for step := 1; step <= steps; step++ {
		t := float64(step) * 0.05
		for i, c := range clients {
			c.Tick(walkers[i].At(t))
		}
		time.Sleep(4 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // drain in-flight traffic

	var updates, probes int64
	for _, c := range clients {
		u, p := c.Stats()
		updates += u
		probes += p
	}
	mu.Lock()
	got := pushes
	mu.Unlock()
	fmt.Printf("\nfleet sent %d updates and answered %d probes over %d ticks (%d position fixes)\n",
		updates, probes, steps, steps*nClients)
	fmt.Printf("application server received %d result pushes\n", got)
}
