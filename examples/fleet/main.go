// Fleet management: geofence monitoring for a delivery fleet.
//
// A dispatcher draws geofences (continuous range queries) around a depot,
// a customs zone and a low-emission downtown area, then watches vans roam a
// road-grid-like pattern. The monitor reports entries and exits exactly,
// while vans only transmit when they leave their safe regions — the paper's
// fleet-management motivating scenario (Section 1).
package main

import (
	"fmt"

	"srb"
	"srb/internal/mobility"
)

const (
	nVans = 400
	steps = 300
)

type zone struct {
	id   srb.QueryID
	name string
	rect srb.Rect
}

func main() {
	zones := []zone{
		{1, "depot", srb.R(0.05, 0.05, 0.15, 0.15)},
		{2, "customs", srb.R(0.70, 0.10, 0.85, 0.30)},
		{3, "low-emission downtown", srb.R(0.40, 0.55, 0.65, 0.80)},
	}
	names := map[srb.QueryID]string{}
	for _, z := range zones {
		names[z.id] = z.name
	}

	// Van movement: steady directed drivers.
	vans := make([]*mobility.Directed, nVans)
	positions := make(map[uint64]srb.Point, nVans)
	space := srb.R(0, 0, 1, 1)
	starts := mobility.StartPositions(99, nVans, space)
	for i := range vans {
		vans[i] = mobility.NewDirected(99, uint64(i), space, 0.01, 0.2, 0.1, starts[i])
		positions[uint64(i)] = starts[i]
	}

	inZone := map[srb.QueryID]int{}
	events := 0
	mon := srb.NewMonitor(srb.Options{GridM: 20}, srb.ProberFunc(func(id uint64) srb.Point {
		return positions[id]
	}), func(u srb.ResultUpdate) {
		events++
		inZone[u.Query] = len(u.Results)
	})

	regions := make(map[uint64]srb.Rect, nVans)
	deliver := func(ups []srb.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}

	for i := 0; i < nVans; i++ {
		deliver(mon.AddObject(uint64(i), positions[uint64(i)]))
	}
	for _, z := range zones {
		res, ups, err := mon.RegisterRange(z.id, z.rect)
		if err != nil {
			panic(err)
		}
		deliver(ups)
		inZone[z.id] = len(res)
		fmt.Printf("%-24s initially holds %d vans\n", z.name, len(res))
	}

	updates := 0
	for step := 1; step <= steps; step++ {
		t := float64(step) * 0.05
		mon.SetTime(t)
		for i := 0; i < nVans; i++ {
			id := uint64(i)
			np := vans[i].At(t)
			positions[id] = np
			if !regions[id].Contains(np) {
				updates++
				deliver(mon.Update(id, np))
			}
		}
	}

	fmt.Printf("\nafter %d steps: %d uplink updates (%.2f per van), %d zone-change events\n",
		steps, updates, float64(updates)/nVans, events)
	for _, z := range zones {
		res, _ := mon.Results(z.id)
		fmt.Printf("%-24s now holds %d vans\n", z.name, len(res))
	}

	// Sanity: the monitored occupancy equals a brute-force count.
	for _, z := range zones {
		res, _ := mon.Results(z.id)
		brute := 0
		for _, p := range positions {
			if z.rect.Contains(p) {
				brute++
			}
		}
		if brute != len(res) {
			fmt.Printf("MISMATCH in %s: monitored %d, actual %d\n", z.name, len(res), brute)
		}
	}
}
