package srb_test

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"srb"
)

// TestPublicAPIRoundTrip drives the exported facade end to end: objects,
// both query kinds, the safe-region protocol and result subscriptions.
func TestPublicAPIRoundTrip(t *testing.T) {
	positions := map[uint64]srb.Point{
		1: srb.Pt(0.45, 0.45),
		2: srb.Pt(0.55, 0.55),
		3: srb.Pt(0.9, 0.9),
	}
	var pushed []srb.ResultUpdate
	mon := srb.NewMonitor(srb.Options{GridM: 10},
		srb.ProberFunc(func(id uint64) srb.Point { return positions[id] }),
		func(u srb.ResultUpdate) { pushed = append(pushed, u) })

	regions := map[uint64]srb.Rect{}
	deliver := func(ups []srb.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}
	for id, p := range positions {
		deliver(mon.AddObject(id, p))
	}

	res, ups, err := mon.RegisterRange(1, srb.R(0.4, 0.4, 0.6, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	deliver(ups)
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	if len(res) != 2 || res[0] != 1 || res[1] != 2 {
		t.Fatalf("range results = %v", res)
	}

	res, ups, err = mon.RegisterKNN(2, srb.Pt(0.5, 0.5), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	deliver(ups)
	if len(res) != 2 {
		t.Fatalf("kNN results = %v", res)
	}

	// Walk object 3 into the rectangle following the protocol.
	for positions[3].X > 0.58 {
		p := positions[3]
		np := srb.Pt(p.X-0.01, p.Y-0.01)
		positions[3] = np
		if !regions[3].Contains(np) {
			deliver(mon.Update(3, np))
		}
	}
	final := srb.Pt(0.5, 0.5)
	positions[3] = final
	if !regions[3].Contains(final) {
		deliver(mon.Update(3, final))
	}
	got, ok := mon.Results(1)
	if !ok || len(got) != 3 {
		t.Fatalf("after entry: results = %v, %v", got, ok)
	}
	if len(pushed) == 0 {
		t.Fatal("expected pushed result updates")
	}
	if n := mon.NumObjects(); n != 3 {
		t.Fatalf("NumObjects = %d", n)
	}
	if n := mon.NumQueries(); n != 2 {
		t.Fatalf("NumQueries = %d", n)
	}
	st := mon.Stats()
	if st.SourceUpdates == 0 || st.SafeRegionsBuilt == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
}

func TestConstructors(t *testing.T) {
	if srb.Pt(1, 2) != (srb.Point{X: 1, Y: 2}) {
		t.Fatal("Pt")
	}
	if srb.R(1, 2, 0, -1) != (srb.Rect{MinX: 0, MinY: -1, MaxX: 1, MaxY: 2}) {
		t.Fatal("R must normalize")
	}
}

func TestConcurrentMonitorUnderRace(t *testing.T) {
	var mu sync.Mutex
	positions := map[uint64]srb.Point{}
	getPos := func(id uint64) srb.Point {
		mu.Lock()
		defer mu.Unlock()
		return positions[id]
	}
	setPos := func(id uint64, p srb.Point) {
		mu.Lock()
		defer mu.Unlock()
		positions[id] = p
	}
	mon := srb.NewConcurrentMonitor(srb.Options{GridM: 8}, srb.ProberFunc(getPos), nil)
	for i := uint64(0); i < 50; i++ {
		setPos(i, srb.Pt(0.02*float64(i), 0.5))
		mon.AddObject(i, getPos(i))
	}
	if _, _, err := mon.RegisterRange(1, srb.R(0.2, 0.2, 0.8, 0.8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mon.RegisterKNN(2, srb.Pt(0.5, 0.5), 3, true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mon.RegisterWithinDistance(3, srb.Pt(0.5, 0.5), 0.2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				id := uint64(rng.Intn(50))
				p := srb.Pt(rng.Float64(), rng.Float64())
				setPos(id, p)
				mon.Update(id, p)
				if i%10 == 0 {
					mon.Results(2)
					mon.SafeRegion(id)
					mon.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if mon.NumObjects() != 50 || mon.NumQueries() != 3 {
		t.Fatalf("population drifted: %d objects, %d queries", mon.NumObjects(), mon.NumQueries())
	}
	var buf bytes.Buffer
	if err := mon.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := srb.NewConcurrentMonitor(srb.Options{GridM: 8}, srb.ProberFunc(getPos), nil)
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.NumObjects() != 50 {
		t.Fatal("snapshot through wrapper failed")
	}
	mon.Deregister(3)
	mon.RemoveObject(49)
	if mon.NumObjects() != 49 || mon.NumQueries() != 2 {
		t.Fatal("teardown")
	}
	if _, _, err := mon.RegisterCount(4, srb.R(0, 0, 0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	mon.SetTime(1)
}
