// Package srb is a production-oriented implementation of the safe-region
// monitoring framework of Hu, Xu & Lee, "A Generic Framework for Monitoring
// Continuous Spatial Queries over Moving Objects" (SIGMOD 2005).
//
// The framework continuously monitors range and k-nearest-neighbor queries
// over a population of moving objects while minimizing wireless
// communication: the server grants every object a rectangular safe region,
// and the object reports its location only when it leaves that region. The
// server maintains an R*-tree over safe regions and a grid index over query
// quarantine areas, evaluates queries directly on safe regions with lazy
// probes, and recomputes maximal safe regions on every update.
//
// # Quick start
//
//	mon := srb.NewMonitor(srb.Options{}, srb.ProberFunc(gps.Locate), nil)
//	mon.AddObject(42, srb.Pt(0.3, 0.7))
//	results, _, _ := mon.RegisterKNN(1, srb.Pt(0.5, 0.5), 3, true)
//
// Every call that may refresh safe regions returns the refreshed regions;
// deliver them to the corresponding clients, which in turn call Update only
// when they exit their region.
//
// See the examples directory for complete applications, internal/sim for the
// discrete event simulator reproducing the paper's evaluation, and DESIGN.md
// for the system inventory and paper errata.
package srb

import (
	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/query"
)

// Point is a location in the monitored space.
type Point = geom.Point

// Rect is an axis-aligned rectangle: safe regions, range-query rectangles and
// quarantine bounding boxes.
type Rect = geom.Rect

// Circle is a disk, used for kNN quarantine areas.
type Circle = geom.Circle

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R constructs a Rect from two corners, normalizing their order.
func R(x1, y1, x2, y2 float64) Rect { return geom.R(x1, y1, x2, y2) }

// QueryID identifies a registered continuous query.
type QueryID = query.ID

// Monitor is the database server of the framework. It is not safe for
// concurrent use: the framework assumes location updates are processed
// sequentially (Section 3 of the paper); wrap calls in a mutex or a single
// goroutine for concurrent clients (package remote does the latter).
type Monitor = core.Monitor

// Options configures a Monitor: monitored space, grid resolution M, and the
// Section 6 enhancements (maximum speed, steady movement).
type Options = core.Options

// Stats exposes the server's work counters (updates, probes, reevaluations,
// safe-region computations).
type Stats = core.Stats

// Prober supplies exact object locations for server-initiated probes.
type Prober = core.Prober

// ProberFunc adapts a plain function to the Prober interface.
type ProberFunc = core.ProberFunc

// ResultUpdate reports a changed query result to the application server.
type ResultUpdate = core.ResultUpdate

// SafeRegionUpdate carries a refreshed safe region that must be delivered to
// its mobile client.
type SafeRegionUpdate = core.SafeRegionUpdate

// NewMonitor creates a monitoring server. prober must not be nil; onUpdate
// (may be nil) receives every result change pushed to application servers.
func NewMonitor(opt Options, prober Prober, onUpdate func(ResultUpdate)) *Monitor {
	return core.New(opt, prober, onUpdate)
}
