package srb_test

// Documentation gates: METRICS.md must list exactly the metric families the
// code registers, and every markdown cross-reference must resolve. Both run
// under plain `go test` and in the CI docs job.

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"srb/internal/chaos"
	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/load"
	"srb/internal/obs"
	"srb/internal/remote"
)

// wireEverything assembles a server with every optional subsystem attached —
// batch pipeline, chaos injector, persistence, an app client — so the
// registry holds the complete production family set.
func wireEverything(t *testing.T, reg *obs.Registry) {
	t.Helper()
	sink := obs.NewSink(reg, nil)

	s, err := remote.NewServer("127.0.0.1:0", core.Options{GridM: 10})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	s.SetLogf(nil)
	s.SetWorkers(2)
	if err := s.SetShards(2); err != nil {
		t.Fatalf("shards: %v", err)
	}
	s.SetChaos(chaos.NewInjector(chaos.Config{}, chaos.Config{}))
	if err := s.SetPersist(t.TempDir(), 0); err != nil {
		t.Fatalf("persist: %v", err)
	}
	s.SetObs(sink)
	done := make(chan struct{})
	go func() { defer close(done); _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close(); <-done })

	app, err := remote.DialApp(s.Addr())
	if err != nil {
		t.Fatalf("app: %v", err)
	}
	app.SetLogf(nil)
	app.SetObs(sink)
	t.Cleanup(func() { _ = app.Close() })

	// One client and one update so latency histograms have samples.
	c, err := remote.DialClient(s.Addr(), 1, geom.Point{X: 0.5, Y: 0.5})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })

	// The load harness's client-side families (srb_load_*).
	load.NewMetrics(reg)
}

// docFamilies extracts the `srb_*` family names from METRICS.md table rows.
func docFamilies(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile("METRICS.md")
	if err != nil {
		t.Fatalf("read METRICS.md: %v", err)
	}
	row := regexp.MustCompile("^\\| `(srb_[a-z_]+)`")
	out := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			out[m[1]] = true
		}
	}
	if len(out) == 0 {
		t.Fatal("no metric rows found in METRICS.md")
	}
	return out
}

func TestMetricsDocMatchesRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	wireEverything(t, reg)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	fams, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}

	documented := docFamilies(t)
	var missing, stale []string
	for name := range fams {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if fams[name] == nil {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("registered but undocumented in METRICS.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("documented in METRICS.md but not registered: %v", stale)
	}
}

// mdLink matches [text](target); path-like targets are resolved against the
// repo root, and #anchors against the headings of the containing file.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// pathLike filters out prose parentheticals the link regex can catch, e.g.
// interval notation "[0,1] (§6.2)".
var pathLike = regexp.MustCompile(`^[\w./#-]+$`)

// headingSlug reproduces GitHub's anchor slugs for the simple headings used
// in this repo: lowercase, punctuation stripped, spaces to hyphens.
func headingSlug(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

func TestDocsLinksResolve(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil || len(docs) == 0 {
		t.Fatalf("no markdown files at repo root (err=%v)", err)
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		text := string(data)

		anchors := make(map[string]bool)
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "#") {
				anchors[headingSlug(strings.TrimLeft(line, "# "))] = true
			}
		}

		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || !pathLike.MatchString(target) {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			if file == "" {
				if !anchors[frag] {
					t.Errorf("%s: broken anchor link %q", doc, target)
				}
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(file)); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, target, err)
			}
		}
	}
}
