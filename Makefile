# Correctness gate for the safe-region monitoring framework.
# `make check` is what CI runs; every target also works standalone.

GO ?= go

.PHONY: check build vet fmt lint lint-ipa lint-baseline test race debug fuzz-smoke obs-smoke docs bench-json load-smoke shard-diff

check: build vet fmt lint lint-ipa test race debug fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Project-specific static analysis (internal/analysis): the syntactic checks
# (floatcmp, lockreentry, sliceescape, bareGoroutine) plus the flow-sensitive
# v2 suite (lockorder, errdrop, ctxdeadline, distunits), the interprocedural
# v3 suite (maporder, wallclock, allochot, rwpurity) and the v4 contract
# suite (chanlife, goroleak, protodrift, atomicmix). Fails on any
# unsuppressed finding; known hot-path allocation sites are accepted through
# lint/allochot.baseline.
lint:
	$(GO) run ./cmd/srb-lint -baseline lint/allochot.baseline ./...

# Only the interprocedural and contract suites: fails on any
# maporder/wallclock/rwpurity finding, on allochot sites not in the
# checked-in baseline (the allocation ratchet), and on any
# chanlife/goroleak/protodrift/atomicmix concurrency- or wire-contract
# violation.
lint-ipa:
	$(GO) run ./cmd/srb-lint -checks maporder,wallclock,allochot,rwpurity,chanlife,goroleak,protodrift,atomicmix -baseline lint/allochot.baseline ./...

# Regenerate the accepted hot-path allocation inventory after intentional
# changes; the output is deterministic, so the diff shows exactly the sites
# added or removed.
lint-baseline:
	$(GO) run ./cmd/srb-lint -checks allochot -write-baseline lint/allochot.baseline ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Self-checking build: every mutating Monitor operation asserts the full
# invariant suite (srbdebug build tag).
debug:
	$(GO) test -tags srbdebug ./internal/core/

# End-to-end observability gate: build the real binaries, run a server with
# metrics on, drive a client workload, scrape /metrics and /trace, and fail
# on any missing family or stuck counter.
obs-smoke:
	@mkdir -p bin
	$(GO) build -o bin/srb-server ./cmd/srb-server
	$(GO) build -o bin/srb-client ./cmd/srb-client
	$(GO) run ./cmd/srb-obs-smoke -server bin/srb-server -client bin/srb-client -for 10s

# Documentation gate: METRICS.md must list exactly the metric families the
# code registers, every markdown cross-reference must resolve, and vet stays
# clean. The two tests also run under plain `make test`; this target is the
# fast path for the CI docs job.
docs:
	$(GO) test -run 'TestMetricsDocMatchesRegistry|TestDocsLinksResolve' -v .
	$(GO) vet ./...

# Short fuzz runs of the geometry and R*-tree oracles plus the lint CFG
# builder; enough to catch regressions without holding up the gate.
fuzz-smoke:
	$(GO) test -fuzz=FuzzIrlpCircle$$ -fuzztime=10s ./internal/geom/
	$(GO) test -fuzz=FuzzIrlpCircleComplement -fuzztime=10s ./internal/geom/
	$(GO) test -fuzz=FuzzTreeOps -fuzztime=10s ./internal/rtree/
	$(GO) test -fuzz=FuzzCFG -fuzztime=10s ./internal/analysis/
	$(GO) test -fuzz=FuzzProtoDriftExtract -fuzztime=10s ./internal/analysis/

# Machine-readable update-path benchmark snapshot plus regression gate: the
# sequential, batch (nil-sink and fully instrumented), and 4-shard update
# benchmarks with -benchmem, parsed into BENCH_PR10.json and compared against
# the committed BENCH_PR9.json baseline. The gate fails on a >15% ns/op or
# allocs/op regression in either nil-sink update benchmark; the Instrumented
# variants (observability-overhead accounting in EXPERIMENTS.md) and
# UpdateSharded (sharding-overhead tracking, new this cycle) are recorded but
# not gated. Benchmark wall time is machine-dependent; the committed baseline
# is refreshed alongside any intentional update-path change.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkUpdateSequential(Instrumented)?$$|BenchmarkUpdateBatch(Instrumented)?$$|BenchmarkUpdateSharded$$' -benchmem . | \
		$(GO) run ./cmd/srb-benchjson -out BENCH_PR10.json \
		-baseline BENCH_PR9.json -gate UpdateSequential,UpdateBatch -max-regress 0.15

# Capacity smoke: build the real server and the open-loop load harness, ramp
# a small session fleet against a 4-shard server, SIGKILL it mid-run for the
# RTO drill (recovery replays into the sharded index), and validate the
# emitted LOAD_PR10.json (schema srb-load/v2, non-zero latency
# quantiles, monotone ramp, finite recovery timeline, and a worst-tail ack
# whose causal trace ID resolves to a complete update→grant chain in the
# server's flight recorder). The SLO is generous because CI boxes are slow
# and shared; production capacity runs use `bin/srb-load -slo 50ms
# -stage-dur 60s` directly (see OPERATIONS.md "Capacity testing").
load-smoke:
	@mkdir -p bin
	$(GO) build -o bin/srb-server ./cmd/srb-server
	$(GO) build -o bin/srb-load ./cmd/srb-load
	./bin/srb-load -server-bin bin/srb-server -sessions 16 -stages 1,2 \
		-stage-dur 3s -slo 500ms -rto -rto-timeout 30s -seed 1 -shards 4 \
		-out LOAD_PR10.json

# Sharding differential gate: the sharded monitor must be bit-identical to
# the single-tree monitor — result streams, safe regions, stats, snapshot
# bytes — at 1/2/4/8 shards under several GOMAXPROCS values, across a
# crash-recovery cycle that also rotates the shard count, and under journal
# replay. Runs under -race: the differential doubles as a schedule-dependence
# detector for the forest's channel protocol.
shard-diff:
	$(GO) test -race -run 'TestShardedDifferential|TestShardedJournalRecovery|TestShardedServerEndToEnd|TestSRBShardedStaysBitIdentical' \
		./internal/shard/ ./internal/remote/ ./internal/sim/
