package srb

import (
	"io"
	"sync"
)

// ConcurrentMonitor wraps a Monitor with a mutex so it can be shared by
// multiple goroutines (e.g. one per client connection). The framework's
// sequential-processing assumption is preserved by construction: operations
// are serialized, exactly as the paper's server model requires. For a
// channel-based alternative see internal/remote, which serializes through an
// event loop instead.
type ConcurrentMonitor struct {
	mu  sync.Mutex
	mon *Monitor
}

// NewConcurrentMonitor creates a thread-safe monitoring server. The prober is
// invoked while the internal lock is held: it must not call back into the
// monitor.
func NewConcurrentMonitor(opt Options, prober Prober, onUpdate func(ResultUpdate)) *ConcurrentMonitor {
	return &ConcurrentMonitor{mon: NewMonitor(opt, prober, onUpdate)}
}

// SetTime advances the logical clock.
func (c *ConcurrentMonitor) SetTime(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mon.SetTime(t)
}

// AddObject registers a moving object.
func (c *ConcurrentMonitor) AddObject(id uint64, p Point) []SafeRegionUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.AddObject(id, p)
}

// RemoveObject deregisters an object.
func (c *ConcurrentMonitor) RemoveObject(id uint64) []SafeRegionUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RemoveObject(id)
}

// Update processes a source-initiated location update.
func (c *ConcurrentMonitor) Update(id uint64, p Point) []SafeRegionUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Update(id, p)
}

// RegisterRange registers a continuous range query.
func (c *ConcurrentMonitor) RegisterRange(id QueryID, rect Rect) ([]uint64, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterRange(id, rect)
}

// RegisterKNN registers a continuous kNN query.
func (c *ConcurrentMonitor) RegisterKNN(id QueryID, pt Point, k int, ordered bool) ([]uint64, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterKNN(id, pt, k, ordered)
}

// RegisterCount registers an aggregate COUNT range query.
func (c *ConcurrentMonitor) RegisterCount(id QueryID, rect Rect) (int, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterCount(id, rect)
}

// RegisterWithinDistance registers a circular range query.
func (c *ConcurrentMonitor) RegisterWithinDistance(id QueryID, center Point, radius float64) ([]uint64, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterWithinDistance(id, center, radius)
}

// Deregister removes a query.
func (c *ConcurrentMonitor) Deregister(id QueryID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Deregister(id)
}

// Results returns a query's current results.
func (c *ConcurrentMonitor) Results(id QueryID) ([]uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Results(id)
}

// SafeRegion returns an object's current safe region.
func (c *ConcurrentMonitor) SafeRegion(id uint64) (Rect, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.SafeRegion(id)
}

// Stats returns the server's work counters.
func (c *ConcurrentMonitor) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Stats()
}

// NumObjects returns the number of registered objects.
func (c *ConcurrentMonitor) NumObjects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.NumObjects()
}

// NumQueries returns the number of registered queries.
func (c *ConcurrentMonitor) NumQueries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.NumQueries()
}

// SaveSnapshot serializes the monitor's durable state.
func (c *ConcurrentMonitor) SaveSnapshot(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.SaveSnapshot(w)
}

// LoadSnapshot restores state into an empty monitor.
func (c *ConcurrentMonitor) LoadSnapshot(r io.Reader) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.LoadSnapshot(r)
}
