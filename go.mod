module srb

go 1.22
