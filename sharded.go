package srb

import (
	"srb/internal/shard"
)

// ShardedMonitor is a thread-safe monitoring server whose object index is
// partitioned across N goroutine-confined shards: each shard owns a
// contiguous stripe of grid-cell columns and a private R*-tree, and a router
// migrates objects across stripe boundaries and scatter-gathers
// boundary-straddling searches. Every externally visible outcome — results,
// safe regions, stats, snapshots, journals — is bit-identical to a
// single-tree Monitor driven with the same operations; the shard layer buys
// smaller trees and a seam for distributing the index without changing
// semantics. See ARCHITECTURE.md for the shard contract.
type ShardedMonitor = shard.ShardedMonitor

// NewShardedMonitor creates a sharded monitoring server with the given shard
// count (at least 1; counts beyond the grid's column resolution leave
// trailing shards empty). The prober and onUpdate callbacks are invoked while
// the internal lock is held: they must not call back into the monitor. Close
// must be called to release the shard workers.
func NewShardedMonitor(opt Options, shards int, prober Prober, onUpdate func(ResultUpdate)) (*ShardedMonitor, error) {
	return shard.New(opt, shards, prober, onUpdate)
}
