package srb_test

import (
	"fmt"
	"sort"

	"srb"
)

// sortedIDs returns a sorted copy: result slices preserve maintenance order,
// which is not part of the monitoring contract.
func sortedIDs(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// The fundamental loop: the server grants safe regions, the client reports
// only when it leaves its region, and results stay exact.
func Example() {
	// True positions; the prober answers server-initiated probes.
	positions := map[uint64]srb.Point{
		1: srb.Pt(0.30, 0.50),
		2: srb.Pt(0.70, 0.50),
	}
	prober := srb.ProberFunc(func(id uint64) srb.Point { return positions[id] })
	mon := srb.NewMonitor(srb.Options{GridM: 10}, prober, nil)

	regions := map[uint64]srb.Rect{}
	grant := func(ups []srb.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}
	grant(mon.AddObject(1, positions[1]))
	grant(mon.AddObject(2, positions[2]))

	// A continuous range query over the west half.
	results, ups, _ := mon.RegisterRange(1, srb.R(0, 0, 0.5, 1))
	grant(ups)
	fmt.Println("west half:", results)

	// Object 2 wanders within its safe region: no message is sent, and the
	// monitored result is still exact.
	positions[2] = srb.Pt(0.72, 0.52)
	if !regions[2].Contains(positions[2]) {
		grant(mon.Update(2, positions[2]))
	}
	r, _ := mon.Results(1)
	fmt.Println("after silent move:", r)

	// Object 2 crosses into the west half: it exits its region, reports, and
	// the result updates.
	positions[2] = srb.Pt(0.40, 0.52)
	if !regions[2].Contains(positions[2]) {
		grant(mon.Update(2, positions[2]))
	}
	r, _ = mon.Results(1)
	fmt.Println("after crossing:", len(r), "objects")

	// Output:
	// west half: [1]
	// after silent move: [1]
	// after crossing: 2 objects
}

// A thread-safe monitor whose batch path applies a whole tick of location
// reports at once, bit-identical to sequential ascending-ID processing.
func ExampleParallelMonitor() {
	positions := map[uint64]srb.Point{}
	mon := srb.NewParallelMonitor(srb.Options{GridM: 10}, 4,
		srb.ProberFunc(func(id uint64) srb.Point { return positions[id] }), nil)
	for i := uint64(1); i <= 8; i++ {
		positions[i] = srb.Pt(0.1*float64(i), 0.25)
		mon.AddObject(i, positions[i])
	}
	results, _, _ := mon.RegisterRange(1, srb.R(0, 0, 0.45, 1))
	fmt.Println("west:", sortedIDs(results))

	// One GPS tick delivers several reports; UpdateBatch plans the
	// conflict-free part on the worker pool and applies everything in
	// ascending object-ID order.
	batch := []srb.ObjectUpdate{
		{ID: 2, Loc: srb.Pt(0.60, 0.30)}, // leaves the query rectangle
		{ID: 7, Loc: srb.Pt(0.20, 0.30)}, // enters it
		{ID: 8, Loc: srb.Pt(0.82, 0.26)}, // far from any query
	}
	for _, u := range batch {
		positions[u.ID] = u.Loc
	}
	mon.UpdateBatch(batch)

	r, _ := mon.Results(1)
	fmt.Println("after batch:", sortedIDs(r))
	// Output:
	// west: [1 2 3 4]
	// after batch: [1 3 4 7]
}

// A monitor whose object index is partitioned into four goroutine-confined
// shards: stripes of grid columns each own a private R*-tree, and a router
// migrates objects that cross stripe boundaries. Results are bit-identical
// to the single-tree monitor.
func ExampleShardedMonitor() {
	positions := map[uint64]srb.Point{}
	mon, err := srb.NewShardedMonitor(srb.Options{GridM: 10}, 4,
		srb.ProberFunc(func(id uint64) srb.Point { return positions[id] }), nil)
	if err != nil {
		panic(err)
	}
	defer mon.Close()

	// Eight objects spread across all four stripes (boundaries at x = 0.3,
	// 0.6 and 0.8 for a 10-column grid split four ways).
	for i := uint64(1); i <= 8; i++ {
		positions[i] = srb.Pt(0.1*float64(i), 0.5)
		mon.AddObject(i, positions[i])
	}
	results, _, _ := mon.RegisterRange(1, srb.R(0, 0, 0.45, 1))
	fmt.Println("west:", sortedIDs(results))

	// Object 2 moves from the first stripe (x < 0.3) into the second: the
	// router migrates it to the owning shard's tree, and the query result
	// updates exactly as a single-tree monitor would.
	positions[2] = srb.Pt(0.55, 0.5)
	mon.Update(2, positions[2])
	r, _ := mon.Results(1)
	fmt.Println("after crossing:", sortedIDs(r))
	fmt.Println("shards:", mon.NumShards(), "migrated:", mon.Forest().Migrations() > 0)
	// Output:
	// west: [1 2 3 4]
	// after crossing: [1 3 4]
	// shards: 4 migrated: true
}

// A kNN query whose focus sits on a stripe boundary: the nearest neighbors
// live in different shards, so the search scatters across shard trees and
// gathers candidates through one canonical best-first frontier. The ranked
// list is the same as a single tree's.
func ExampleShardedMonitor_RegisterKNN() {
	positions := map[uint64]srb.Point{
		1: srb.Pt(0.28, 0.5), // first stripe (x < 0.3)
		2: srb.Pt(0.33, 0.5), // second stripe
		3: srb.Pt(0.62, 0.5), // third stripe
	}
	mon, err := srb.NewShardedMonitor(srb.Options{GridM: 10}, 4,
		srb.ProberFunc(func(id uint64) srb.Point { return positions[id] }), nil)
	if err != nil {
		panic(err)
	}
	defer mon.Close()
	for id := uint64(1); id <= 3; id++ {
		mon.AddObject(id, positions[id])
	}

	ranked, _, _ := mon.RegisterKNN(7, srb.Pt(0.30, 0.5), 2, true)
	fmt.Println("2-NN of the boundary point:", ranked)
	// Output:
	// 2-NN of the boundary point: [1 2]
}

// Order-sensitive kNN monitoring returns ranked neighbor lists and keeps them
// exact as objects move.
func ExampleMonitor_RegisterKNN() {
	positions := map[uint64]srb.Point{
		1: srb.Pt(0.10, 0.5),
		2: srb.Pt(0.30, 0.5),
		3: srb.Pt(0.80, 0.5),
	}
	mon := srb.NewMonitor(srb.Options{GridM: 10},
		srb.ProberFunc(func(id uint64) srb.Point { return positions[id] }), nil)
	for id, p := range map[uint64]srb.Point{1: positions[1]} {
		mon.AddObject(id, p)
	}
	mon.AddObject(2, positions[2])
	mon.AddObject(3, positions[3])

	ranked, _, _ := mon.RegisterKNN(7, srb.Pt(0.25, 0.5), 2, true)
	fmt.Println("2-NN of (0.25, 0.5):", ranked)
	// Output:
	// 2-NN of (0.25, 0.5): [2 1]
}

// Aggregate COUNT queries report only the population of a rectangle.
func ExampleMonitor_RegisterCount() {
	positions := map[uint64]srb.Point{}
	mon := srb.NewMonitor(srb.Options{GridM: 10},
		srb.ProberFunc(func(id uint64) srb.Point { return positions[id] }), nil)
	for i := uint64(1); i <= 5; i++ {
		positions[i] = srb.Pt(0.1*float64(i), 0.5)
		mon.AddObject(i, positions[i])
	}
	count, _, _ := mon.RegisterCount(1, srb.R(0, 0, 0.35, 1))
	fmt.Println("objects west of 0.35:", count)
	// Output:
	// objects west of 0.35: 3
}
