package srb_test

// Concurrency stress for the two thread-safe facades: readers hammer
// Results/SafeRegion/Stats/counts while a writer goroutine applies update
// batches (ParallelMonitor) or single updates (ConcurrentMonitor). The test
// carries no assertions beyond liveness and internal invariants — its job is
// to give `go test -race` enough interleavings to catch locking mistakes.

import (
	"math/rand"
	"sync"
	"testing"

	"srb"
)

func stressOptions() srb.Options {
	return srb.Options{Space: srb.R(0, 0, 1, 1), GridM: 10}
}

// stressMonitor is the surface both facades share, enough for the stress
// workload.
type stressMonitor interface {
	SetTime(t float64)
	AddObject(id uint64, p srb.Point) []srb.SafeRegionUpdate
	RegisterRange(id srb.QueryID, r srb.Rect) ([]uint64, []srb.SafeRegionUpdate, error)
	RegisterKNN(id srb.QueryID, p srb.Point, k int, ordered bool) ([]uint64, []srb.SafeRegionUpdate, error)
	Deregister(id srb.QueryID) bool
	Results(id srb.QueryID) ([]uint64, bool)
	SafeRegion(id uint64) (srb.Rect, bool)
	Stats() srb.Stats
	NumObjects() int
	NumQueries() int
}

func runStress(t *testing.T, mon stressMonitor, update func(tick int, batch []srb.ObjectUpdate)) {
	t.Helper()
	const nObj = 80
	nTicks, nReaders := 60, 8
	if testing.Short() {
		nTicks, nReaders = 15, 4
	}

	rng := rand.New(rand.NewSource(7))
	mon.SetTime(0)
	for i := 0; i < nObj; i++ {
		mon.AddObject(uint64(i), srb.Pt(rng.Float64(), rng.Float64()))
	}
	for q := 0; q < 6; q++ {
		if q%2 == 0 {
			x, y := rng.Float64()*0.8, rng.Float64()*0.8
			if _, _, err := mon.RegisterRange(srb.QueryID(q+1), srb.R(x, y, x+0.2, y+0.2)); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, _, err := mon.RegisterKNN(srb.QueryID(q+1), srb.Pt(rng.Float64(), rng.Float64()), 3, true); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(4) {
				case 0:
					mon.Results(srb.QueryID(1 + rng.Intn(6)))
				case 1:
					mon.SafeRegion(uint64(rng.Intn(nObj)))
				case 2:
					mon.Stats()
				default:
					mon.NumObjects()
					mon.NumQueries()
				}
			}
		}(int64(r))
	}

	// Writer: one batch per tick plus occasional query churn, racing the
	// readers above.
	for tick := 1; tick <= nTicks; tick++ {
		mon.SetTime(float64(tick) * 0.1)
		batch := make([]srb.ObjectUpdate, 0, nObj/2)
		for i := 0; i < nObj; i += 2 {
			batch = append(batch, srb.ObjectUpdate{ID: uint64(i), Loc: srb.Pt(rng.Float64(), rng.Float64())})
		}
		update(tick, batch)
		if tick%10 == 0 {
			qid := srb.QueryID(1 + rng.Intn(6))
			mon.Deregister(qid)
			x, y := rng.Float64()*0.8, rng.Float64()*0.8
			if _, _, err := mon.RegisterRange(qid, srb.R(x, y, x+0.2, y+0.2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if n := mon.NumObjects(); n != nObj {
		t.Fatalf("object count drifted: %d", n)
	}
}

func TestStressParallelMonitor(t *testing.T) {
	var pos sync.Map
	prober := srb.ProberFunc(func(id uint64) srb.Point {
		if p, ok := pos.Load(id); ok {
			return p.(srb.Point)
		}
		return srb.Point{}
	})
	mon := srb.NewParallelMonitor(stressOptions(), 4, prober, nil)
	runStress(t, mon, func(_ int, batch []srb.ObjectUpdate) {
		for _, u := range batch {
			pos.Store(u.ID, u.Loc)
		}
		mon.UpdateBatch(batch)
	})
	if bs := mon.BatchStats(); bs.Updates == 0 {
		t.Fatalf("stress applied no batched updates: %+v", bs)
	}
}

func TestStressConcurrentMonitor(t *testing.T) {
	var pos sync.Map
	prober := srb.ProberFunc(func(id uint64) srb.Point {
		if p, ok := pos.Load(id); ok {
			return p.(srb.Point)
		}
		return srb.Point{}
	})
	mon := srb.NewConcurrentMonitor(stressOptions(), prober, nil)
	runStress(t, mon, func(_ int, batch []srb.ObjectUpdate) {
		for _, u := range batch {
			pos.Store(u.ID, u.Loc)
			mon.Update(u.ID, u.Loc)
		}
	})
}
