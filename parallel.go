package srb

import (
	"io"
	"sync"

	"srb/internal/parallel"
)

// ObjectUpdate is one location report in a batch: object ID and its new
// exact position.
type ObjectUpdate = parallel.Update

// BatchStats counts the batch pipeline's partitioning effectiveness: how
// many updates were planned on the worker pool, how many applied on the fast
// path, and how many fell back to the sequential path.
type BatchStats = parallel.Stats

// ParallelMonitor wraps a Monitor with a read/write lock and a batch update
// pipeline. Read-only operations (Results, SafeRegion, Stats, counts) take a
// read lock and run concurrently with each other; mutating operations
// serialize, preserving the framework's sequential-processing model.
//
// UpdateBatch additionally moves the CPU hot spot — safe-region geometry —
// of conflict-free updates onto a bounded worker pool while keeping the
// outcome bit-identical to processing the batch sequentially in ascending
// object-ID order (see internal/parallel for the contract and DESIGN.md §9
// for the conflict-partition rule).
type ParallelMonitor struct {
	mu   sync.RWMutex
	mon  *Monitor
	pipe *parallel.Pipeline
}

// NewParallelMonitor creates a thread-safe monitoring server whose batch
// update path plans conflict-free updates on a pool of the given size
// (workers <= 0 selects GOMAXPROCS). The prober and onUpdate callbacks are
// invoked while the internal write lock is held: they must not call back
// into the monitor.
func NewParallelMonitor(opt Options, workers int, prober Prober, onUpdate func(ResultUpdate)) *ParallelMonitor {
	mon := NewMonitor(opt, prober, onUpdate)
	return &ParallelMonitor{mon: mon, pipe: parallel.New(mon, workers)}
}

// UpdateBatch processes a batch of location updates, equivalent to calling
// Update for every entry in ascending object-ID order (input order among
// duplicate IDs), and returns the concatenated safe-region refreshes in that
// order. Conflict-free updates are precomputed concurrently; the conflicting
// residue is serialized.
func (c *ParallelMonitor) UpdateBatch(batch []ObjectUpdate) []SafeRegionUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pipe.Apply(batch)
}

// BatchStats returns the pipeline's partitioning counters.
func (c *ParallelMonitor) BatchStats() BatchStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pipe.Stats()
}

// SetTime advances the logical clock.
func (c *ParallelMonitor) SetTime(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mon.SetTime(t)
}

// AddObject registers a moving object.
func (c *ParallelMonitor) AddObject(id uint64, p Point) []SafeRegionUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.AddObject(id, p)
}

// RemoveObject deregisters an object.
func (c *ParallelMonitor) RemoveObject(id uint64) []SafeRegionUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RemoveObject(id)
}

// Update processes a single source-initiated location update.
func (c *ParallelMonitor) Update(id uint64, p Point) []SafeRegionUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Update(id, p)
}

// RegisterRange registers a continuous range query.
func (c *ParallelMonitor) RegisterRange(id QueryID, rect Rect) ([]uint64, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterRange(id, rect)
}

// RegisterKNN registers a continuous kNN query.
func (c *ParallelMonitor) RegisterKNN(id QueryID, pt Point, k int, ordered bool) ([]uint64, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterKNN(id, pt, k, ordered)
}

// RegisterCount registers an aggregate COUNT range query.
func (c *ParallelMonitor) RegisterCount(id QueryID, rect Rect) (int, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterCount(id, rect)
}

// RegisterWithinDistance registers a circular range query.
func (c *ParallelMonitor) RegisterWithinDistance(id QueryID, center Point, radius float64) ([]uint64, []SafeRegionUpdate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.RegisterWithinDistance(id, center, radius)
}

// Deregister removes a query.
func (c *ParallelMonitor) Deregister(id QueryID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.Deregister(id)
}

// Results returns a query's current results. Read-only: concurrent with
// other readers.
func (c *ParallelMonitor) Results(id QueryID) ([]uint64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mon.Results(id)
}

// SafeRegion returns an object's current safe region. Read-only.
func (c *ParallelMonitor) SafeRegion(id uint64) (Rect, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mon.SafeRegion(id)
}

// Stats returns the server's work counters. Read-only.
func (c *ParallelMonitor) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mon.Stats()
}

// NumObjects returns the number of registered objects. Read-only.
func (c *ParallelMonitor) NumObjects() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mon.NumObjects()
}

// NumQueries returns the number of registered queries. Read-only.
func (c *ParallelMonitor) NumQueries() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mon.NumQueries()
}

// SaveSnapshot serializes the monitor's durable state. It holds the read
// lock: snapshots may be taken concurrently with other readers.
func (c *ParallelMonitor) SaveSnapshot(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mon.SaveSnapshot(w)
}

// LoadSnapshot restores state into an empty monitor.
func (c *ParallelMonitor) LoadSnapshot(r io.Reader) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon.LoadSnapshot(r)
}
