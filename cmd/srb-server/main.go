// Command srb-server runs a standalone safe-region monitoring server (the
// database server of Figure 1.1) on a TCP port, speaking the line-JSON wire
// protocol of package wire. Mobile clients (e.g. cmd/srb-client) connect to
// report locations; application servers register continuous range and kNN
// queries and receive result pushes.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srb/internal/chaos"
	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/obs"
	"srb/internal/remote"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7777", "listen address")
		gridM       = flag.Int("grid", 50, "query index grid resolution M")
		maxSpeed    = flag.Float64("maxspeed", 0, "max object speed; >0 enables the reachability circle (§6.1)")
		steadiness  = flag.Float64("steadiness", 0, "steady-movement parameter D in [0,1] (§6.2)")
		neighbor    = flag.Int("cellneighborhood", 0, "adaptive safe-region cell radius (§7.4 extension)")
		workers     = flag.Int("workers", 0, "batch update pipeline worker count; 0 disables batching")
		shards      = flag.Int("shards", 1, "object-index shard count; >1 partitions the R*-tree across goroutine-confined stripes (see ARCHITECTURE.md)")
		admin       = flag.String("admin", "", "optional HTTP admin address (/stats, /snapshot, /svg, /metrics, /trace, /queries, /debug/flightrec, /debug/pprof)")
		obsOn       = flag.Bool("obs", true, "attach metrics and tracing when -admin is set")
		traceBuf    = flag.Int("tracebuf", obs.DefaultTraceDepth, "decision-trace ring size (events retained for /trace)")
		chaosSpec   = flag.String("chaos", "", "fault-injection spec applied to every connection, e.g. drop=0.01,dup=0.005,delay=5ms,delayrate=0.1,sever=0.001,seed=7")
		lease       = flag.Duration("lease", 0, "session lease: how long a disconnected client's object survives for resume; 0 removes it immediately")
		persistDir  = flag.String("persist", "", "directory for the crash-recovery snapshot + journal; empty disables persistence")
		snapEvery   = flag.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval when -persist is set; 0 journals without snapshotting")
		recoverFlag = flag.Bool("recover", false, "replay the -persist directory's snapshot + journal before serving")
		flightSize  = flag.Int("flightrec", obs.DefaultFlightDepth, "flight-recorder ring size (recent causal events kept for post-mortem dumps); <0 disables")
		flightDir   = flag.String("flightrec-dir", "", "directory for flight-recorder dump files; default is the -persist directory, else the working directory")
		sloBreach   = flag.Duration("slo", 0, "event-loop latency SLO; an op over it dumps the flight recorder (0 disables the trigger)")
		slowOp      = flag.Duration("slowop", 0, "slow-op threshold: monitor operations at or over it are appended to -slowop-log as NDJSON (0 disables; needs -obs)")
		slowOpLog   = flag.String("slowop-log", "", "slow-op log path, appended to; default stderr when -slowop is set")
	)
	flag.Parse()

	s, err := remote.NewServer(*addr, core.Options{
		Space:            geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		GridM:            *gridM,
		MaxSpeed:         *maxSpeed,
		Steadiness:       *steadiness,
		CellNeighborhood: *neighbor,
	})
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// Shard the object index before any state exists (recovery replays into
	// the sharded index, so per-shard recovery comes free).
	if err := s.SetShards(*shards); err != nil {
		log.Fatalf("-shards: %v", err)
	}
	if *admin != "" && *obsOn {
		reg := obs.NewRegistry()
		reg.PublishExpvar("srb")
		s.SetObs(obs.NewSink(reg, obs.NewTracer(*traceBuf)))
	}
	if *slowOp > 0 {
		w := io.Writer(os.Stderr)
		if *slowOpLog != "" {
			f, err := os.OpenFile(*slowOpLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("-slowop-log: %v", err)
			}
			defer f.Close()
			w = f
		}
		s.SetSlowOpLog(*slowOp, w)
	}
	// The flight recorder is on by default: a bounded ring of recent causal
	// events dumped on SLO breach, reconnect storm, or SIGQUIT.
	var flight *obs.FlightRecorder
	if *flightSize >= 0 {
		dir := *flightDir
		if dir == "" {
			dir = *persistDir // "" falls back to the working directory
		}
		flight = obs.NewFlightRecorder(*flightSize, dir)
		flight.SetLogf(log.Printf)
		defer flight.Close()
		s.SetFlightRecorder(flight)
		s.SetSLO(*sloBreach)
	}
	s.SetWorkers(*workers)
	s.SetLease(*lease)
	if *chaosSpec != "" {
		cfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatalf("-chaos: %v", err)
		}
		s.SetChaos(chaos.NewInjector(cfg, cfg))
		fmt.Printf("chaos enabled: %s\n", *chaosSpec)
	}
	if *recoverFlag {
		if *persistDir == "" {
			log.Fatal("-recover requires -persist")
		}
		rs, err := s.Recover(*persistDir)
		if err != nil {
			log.Fatalf("recover: %v", err)
		}
		fmt.Printf("recovered from %s: %d journal entries replayed (last seq %d)\n", *persistDir, rs.Entries, rs.LastSeq)
	}
	if *persistDir != "" {
		if err := s.SetPersist(*persistDir, *snapEvery); err != nil {
			log.Fatalf("persist: %v", err)
		}
		fmt.Printf("persisting to %s (snapshot every %s)\n", *persistDir, *snapEvery)
	}
	fmt.Printf("srb-server listening on %s (M=%d, maxspeed=%g, D=%g, workers=%d, shards=%d, lease=%s)\n",
		s.Addr(), *gridM, *maxSpeed, *steadiness, *workers, s.NumShards(), *lease)
	if *admin != "" {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					log.Printf("admin server panicked: %v", r)
				}
			}()
			fmt.Printf("admin endpoint on http://%s/stats\n", *admin)
			if err := http.ListenAndServe(*admin, s.AdminHandler()); err != nil {
				log.Printf("admin server: %v", err)
			}
		}()
	}

	go func() { //lint:allow goroleak signal handler: exits on interrupt, lives for the process otherwise
		defer func() {
			if r := recover(); r != nil {
				log.Printf("signal handler panicked: %v", r)
			}
		}()
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		// SIGQUIT dumps the flight recorder and keeps serving: the black-box
		// read-out for a live server that is misbehaving but not dead.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		for {
			select {
			case <-quit:
				if path, err := flight.DumpFile("sigquit"); err != nil {
					log.Printf("flightrec: sigquit dump: %v", err)
				} else {
					fmt.Printf("flightrec: dumped %s (sigquit)\n", path)
				}
				continue
			case <-ch:
			}
			break
		}
		fmt.Println("shutting down")
		if err := s.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()
	if err := s.Serve(); err != nil {
		log.Printf("server stopped: %v", err)
	}
}
