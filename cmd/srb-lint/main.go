// Command srb-lint runs the project-specific static-analysis suite of
// internal/analysis over the module: floatcmp (exact float comparison),
// lockreentry (mutex re-entry and prober callbacks), sliceescape (internal
// slices escaping without a copy) and bareGoroutine (untracked goroutines in
// cmd/ and internal/remote).
//
// Usage:
//
//	srb-lint [flags] [packages]
//
// Packages default to ./... relative to the current directory. The exit code
// is 1 when any unsuppressed finding is reported, 2 on operational errors.
// Findings are suppressed with a trailing or preceding comment:
//
//	//lint:allow floatcmp  <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"srb/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		checks   = flag.String("checks", "", "comma-separated analyzer names (default: all)")
		tests    = flag.Bool("tests", false, "also analyze _test.go files and external test packages")
		showSupp = flag.Bool("show-suppressed", false, "print suppressed findings too")
		verbose  = flag.Bool("v", false, "print each analyzed package")
	)
	flag.Parse()

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	loader.IncludeTests = *tests
	paths, err := loader.Expand(cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}

	unsuppressed, suppressed := 0, 0
	for _, path := range paths {
		pkgs, err := loader.LoadForAnalysis(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "srb-lint:", err)
			return 2
		}
		for _, pkg := range pkgs {
			if *verbose {
				fmt.Fprintf(os.Stderr, "srb-lint: analyzing %s (%d files)\n", pkg.Types.Path(), len(pkg.Files))
			}
			for _, d := range analysis.RunPackage(pkg, analyzers) {
				if d.Suppressed {
					suppressed++
					if *showSupp {
						fmt.Printf("%s (suppressed)\n", d)
					}
					continue
				}
				unsuppressed++
				fmt.Println(d)
			}
		}
	}
	if *verbose || unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "srb-lint: %d finding(s), %d suppressed\n", unsuppressed, suppressed)
	}
	if unsuppressed > 0 {
		return 1
	}
	return 0
}
