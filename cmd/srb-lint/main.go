// Command srb-lint runs the project-specific static-analysis suite of
// internal/analysis over the module: floatcmp (exact float comparison),
// lockreentry (mutex re-entry and prober callbacks), sliceescape (internal
// slices escaping without a copy), bareGoroutine (untracked goroutines in
// cmd/ and internal/remote), missingdoc (undocumented packages or exported
// declarations), the flow-sensitive v2 checks built on the CFG/dataflow
// engine: lockorder (cross-package lock-acquisition-order cycles), errdrop
// (error values lost along some path), ctxdeadline (blocking wire operations
// reachable without a deadline) and distunits (distance vs squared-distance
// mixing) — and the interprocedural v3 checks built on the module call graph
// and bottom-up summaries: maporder (map-iteration order reaching ordered
// sinks), wallclock (time.Now/global-rand reads reachable from the
// deterministic packages), allochot (allocation sites reachable from
// //srb:hotpath roots, gated by a checked-in baseline) and rwpurity (writes
// under an RWMutex read lock) — and the v4 contract checks combining the
// call graph, the CFG engine and the type checker's constant information:
// chanlife (channel lifecycle: sends with no receiver, receive-side or
// unguarded double closes, blocking channel operations under a mutex),
// goroleak (goroutines in cmd/, internal/remote and internal/parallel whose
// infinite loops have no channel/context/error-gated exit), protodrift (wire
// and journal protocol constants unhandled in dispatch switches or never
// produced) and atomicmix (fields accessed both via sync/atomic and plain
// loads/stores).
//
// Usage:
//
//	srb-lint [flags] [packages]
//
// Packages default to ./... relative to the current directory. All requested
// packages are loaded before any analyzer runs, so module-scope checks
// (lockorder, the v3 suite) see the whole module in one pass. The exit code
// is 1 when any unsuppressed finding is reported, 2 on operational errors.
// Findings are suppressed with a trailing or preceding comment:
//
//	//lint:allow floatcmp  <reason>
//
// Findings are printed with module-relative paths, sorted by file, line,
// column and check, so output order is deterministic and diffable. With
// -json each finding is printed as one JSON object per line
// ({file, line, col, check, message, suppressed}) on stdout; human-readable
// counters stay on stderr and the exit codes are unchanged.
//
// -baseline FILE subtracts accepted findings (the allochot inventory) before
// deciding the exit code; -write-baseline FILE regenerates that file from the
// current findings instead of reporting them. Regeneration is deterministic:
// running it twice on an unchanged tree produces byte-identical files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"srb/internal/analysis"
)

func main() {
	os.Exit(run())
}

// jsonFinding is the stable -json record shape.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run() int {
	var (
		checks    = flag.String("checks", "", "comma-separated analyzer names (default: all)")
		tests     = flag.Bool("tests", false, "also analyze _test.go files and external test packages")
		showSupp  = flag.Bool("show-suppressed", false, "print suppressed findings too")
		jsonOut   = flag.Bool("json", false, "print findings as JSON, one object per line")
		verbose   = flag.Bool("v", false, "print each analyzed package")
		baseline  = flag.String("baseline", "", "accepted-findings file to subtract before deciding the exit code")
		writeBase = flag.String("write-baseline", "", "regenerate the accepted-findings file from current findings and exit")
	)
	flag.Parse()

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	loader.IncludeTests = *tests
	paths, err := loader.Expand(cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}

	// Load everything first: module-scope analyzers need the whole set.
	var all []*analysis.Package
	for _, path := range paths {
		pkgs, err := loader.LoadForAnalysis(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "srb-lint:", err)
			return 2
		}
		for _, pkg := range pkgs {
			if *verbose {
				fmt.Fprintf(os.Stderr, "srb-lint: analyzing %s (%d files)\n", pkg.Types.Path(), len(pkg.Files))
			}
			all = append(all, pkg)
		}
	}

	moduleDir := loader.ModuleDir()
	diags := analysis.Run(all, analyzers)

	if *writeBase != "" {
		content := analysis.FormatBaseline(moduleDir, diags)
		if err := os.WriteFile(*writeBase, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "srb-lint:", err)
			return 2
		}
		n := 0
		for _, d := range diags {
			if !d.Suppressed {
				n++
			}
		}
		fmt.Fprintf(os.Stderr, "srb-lint: wrote %d accepted finding(s) to %s\n", n, *writeBase)
		return 0
	}

	if *baseline != "" {
		accepted, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "srb-lint:", err)
			return 2
		}
		matched := analysis.ApplyBaseline(moduleDir, accepted, diags)
		if *verbose {
			fmt.Fprintf(os.Stderr, "srb-lint: baseline %s matched %d of %d accepted finding(s)\n", *baseline, matched, len(accepted))
		}
	}

	enc := json.NewEncoder(os.Stdout)
	unsuppressed, suppressed := 0, 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		} else {
			unsuppressed++
		}
		if d.Suppressed && !*showSupp && !*jsonOut {
			continue
		}
		e := analysis.BaselineEntryOf(moduleDir, d)
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:       e.File,
				Line:       e.Line,
				Col:        e.Col,
				Check:      d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "srb-lint:", err)
				return 2
			}
			continue
		}
		line := fmt.Sprintf("%s:%d:%d: %s: %s", e.File, e.Line, e.Col, d.Analyzer, d.Message)
		if d.Suppressed {
			fmt.Printf("%s (suppressed)\n", line)
		} else {
			fmt.Println(line)
		}
	}
	if *verbose || unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "srb-lint: %d finding(s), %d suppressed\n", unsuppressed, suppressed)
	}
	if unsuppressed > 0 {
		return 1
	}
	return 0
}
