// Command srb-lint runs the project-specific static-analysis suite of
// internal/analysis over the module: floatcmp (exact float comparison),
// lockreentry (mutex re-entry and prober callbacks), sliceescape (internal
// slices escaping without a copy), bareGoroutine (untracked goroutines in
// cmd/ and internal/remote), missingdoc (undocumented packages or exported
// declarations), and the flow-sensitive v2 checks built on the
// CFG/dataflow engine: lockorder (cross-package lock-acquisition-order
// cycles), errdrop (error values lost along some path), ctxdeadline
// (blocking wire operations reachable without a deadline) and distunits
// (distance vs squared-distance mixing).
//
// Usage:
//
//	srb-lint [flags] [packages]
//
// Packages default to ./... relative to the current directory. All requested
// packages are loaded before any analyzer runs, so module-scope checks
// (lockorder) see the whole lock graph in one pass. The exit code is 1 when
// any unsuppressed finding is reported, 2 on operational errors. Findings are
// suppressed with a trailing or preceding comment:
//
//	//lint:allow floatcmp  <reason>
//
// With -json each finding is printed as one JSON object per line
// ({file, line, col, check, message, suppressed}) on stdout; human-readable
// counters stay on stderr and the exit codes are unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"srb/internal/analysis"
)

func main() {
	os.Exit(run())
}

// jsonFinding is the stable -json record shape.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run() int {
	var (
		checks   = flag.String("checks", "", "comma-separated analyzer names (default: all)")
		tests    = flag.Bool("tests", false, "also analyze _test.go files and external test packages")
		showSupp = flag.Bool("show-suppressed", false, "print suppressed findings too")
		jsonOut  = flag.Bool("json", false, "print findings as JSON, one object per line")
		verbose  = flag.Bool("v", false, "print each analyzed package")
	)
	flag.Parse()

	analyzers, err := analysis.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}
	loader.IncludeTests = *tests
	paths, err := loader.Expand(cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "srb-lint:", err)
		return 2
	}

	// Load everything first: module-scope analyzers need the whole set.
	var all []*analysis.Package
	for _, path := range paths {
		pkgs, err := loader.LoadForAnalysis(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "srb-lint:", err)
			return 2
		}
		for _, pkg := range pkgs {
			if *verbose {
				fmt.Fprintf(os.Stderr, "srb-lint: analyzing %s (%d files)\n", pkg.Types.Path(), len(pkg.Files))
			}
			all = append(all, pkg)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	unsuppressed, suppressed := 0, 0
	for _, d := range analysis.Run(all, analyzers) {
		if d.Suppressed {
			suppressed++
		} else {
			unsuppressed++
		}
		if d.Suppressed && !*showSupp && !*jsonOut {
			continue
		}
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Check:      d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "srb-lint:", err)
				return 2
			}
			continue
		}
		if d.Suppressed {
			fmt.Printf("%s (suppressed)\n", d)
		} else {
			fmt.Println(d)
		}
	}
	if *verbose || unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "srb-lint: %d finding(s), %d suppressed\n", unsuppressed, suppressed)
	}
	if unsuppressed > 0 {
		return 1
	}
	return 0
}
