// Command srb-sim reproduces the performance evaluation of Hu, Xu & Lee
// (SIGMOD 2005, Section 7): it runs the discrete event simulator comparing
// safe-region monitoring (SRB) against the optimal (OPT) and periodic (PRD)
// schemes and prints the series behind every figure of the paper.
//
// Usage:
//
//	srb-sim -exp fig7.1a            # one experiment at the default scale
//	srb-sim -exp all                # every table and figure
//	srb-sim -exp fig7.2a -n 10000 -w 200 -duration 20
//	srb-sim -list                   # list experiment identifiers
//	srb-sim -full                   # paper-scale parameters (very slow)
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"srb/internal/obs"
	"srb/internal/sim"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		full     = flag.Bool("full", false, "use the paper's full-scale parameters (Table 7.1)")
		n        = flag.Int("n", 0, "override the number of moving objects N")
		w        = flag.Int("w", 0, "override the number of queries W")
		duration = flag.Float64("duration", 0, "override the simulated horizon")
		seed     = flag.Int64("seed", 0, "override the workload seed")
		workers  = flag.Int("workers", 0, "SRB batch update pipeline worker count; 0 keeps the sequential path")
		shards   = flag.Int("shards", 1, "SRB object-index shard count; >1 partitions the R*-tree (bit-identical results)")
		progress = flag.Float64("progress", 0, "print a progress line every this many simulated time units (SRB runs)")
		metrics  = flag.String("metrics", "", "optional HTTP address serving /metrics and /trace for the running simulation")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	base := sim.Default()
	if *full {
		base = sim.Paper()
	}
	if *n > 0 {
		base.N = *n
	}
	if *w > 0 {
		base.W = *w
	}
	if *duration > 0 {
		base.Duration = *duration
	}
	if *seed != 0 {
		base.Seed = *seed
	}
	if *workers > 0 {
		base.BatchWorkers = *workers
	}
	if *shards > 1 {
		base.Shards = *shards
	}
	if *progress > 0 {
		base.ProgressEvery = *progress
		base.Progress = func(p sim.Progress) {
			fmt.Fprintf(os.Stderr, "progress %s t=%.2f accuracy=%.4f commcost=%.0f updates=%d probes=%d\n",
				p.Scheme, p.T, p.Accuracy, p.CommCost, p.Updates, p.Probes)
		}
	}
	if *metrics != "" {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(obs.DefaultTraceDepth)
		base.Obs = obs.NewSink(reg, tr)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		mux.Handle("/trace", tr)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Fprintf(os.Stderr, "metrics server panicked: %v\n", r)
				}
			}()
			fmt.Fprintf(os.Stderr, "metrics endpoint on http://%s/metrics\n", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			}
		}()
	}

	run := func(e sim.Experiment) {
		start := time.Now()
		tab := e.Run(base)
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Println(tab.Format())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *expID == "all" {
		for _, e := range sim.Experiments() {
			run(e)
		}
		return
	}
	e, ok := sim.ExperimentByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
		os.Exit(2)
	}
	run(e)
}
