// Command srb-sim reproduces the performance evaluation of Hu, Xu & Lee
// (SIGMOD 2005, Section 7): it runs the discrete event simulator comparing
// safe-region monitoring (SRB) against the optimal (OPT) and periodic (PRD)
// schemes and prints the series behind every figure of the paper.
//
// Usage:
//
//	srb-sim -exp fig7.1a            # one experiment at the default scale
//	srb-sim -exp all                # every table and figure
//	srb-sim -exp fig7.2a -n 10000 -w 200 -duration 20
//	srb-sim -list                   # list experiment identifiers
//	srb-sim -full                   # paper-scale parameters (very slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"srb/internal/sim"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		full     = flag.Bool("full", false, "use the paper's full-scale parameters (Table 7.1)")
		n        = flag.Int("n", 0, "override the number of moving objects N")
		w        = flag.Int("w", 0, "override the number of queries W")
		duration = flag.Float64("duration", 0, "override the simulated horizon")
		seed     = flag.Int64("seed", 0, "override the workload seed")
		workers  = flag.Int("workers", 0, "SRB batch update pipeline worker count; 0 keeps the sequential path")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	base := sim.Default()
	if *full {
		base = sim.Paper()
	}
	if *n > 0 {
		base.N = *n
	}
	if *w > 0 {
		base.W = *w
	}
	if *duration > 0 {
		base.Duration = *duration
	}
	if *seed != 0 {
		base.Seed = *seed
	}
	if *workers > 0 {
		base.BatchWorkers = *workers
	}

	run := func(e sim.Experiment) {
		start := time.Now()
		tab := e.Run(base)
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Println(tab.Format())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if *expID == "all" {
		for _, e := range sim.Experiments() {
			run(e)
		}
		return
	}
	e, ok := sim.ExperimentByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
		os.Exit(2)
	}
	run(e)
}
