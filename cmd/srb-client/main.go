// Command srb-client simulates a fleet of mobile clients against a running
// srb-server: each client follows the random-waypoint model, reports its
// location only when it exits its granted safe region, and answers probes.
// Optionally it also acts as an application server, registering a query
// workload and printing result pushes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/query"
	"srb/internal/remote"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7777", "server address")
		n         = flag.Int("n", 100, "number of mobile clients")
		seed      = flag.Int64("seed", 1, "mobility seed")
		speed     = flag.Float64("speed", 0.01, "mean speed v̄ per time unit")
		period    = flag.Float64("period", 0.1, "mean constant-movement period t̄v")
		tick      = flag.Duration("tick", 50*time.Millisecond, "wall time per simulated 0.05 time units")
		duration  = flag.Duration("for", 30*time.Second, "how long to run")
		nRange    = flag.Int("range", 3, "range queries to register")
		nKNN      = flag.Int("knn", 3, "kNN queries to register")
		verbose   = flag.Bool("v", false, "print result pushes")
		reconnect = flag.Bool("reconnect", false, "auto-reconnect with exponential backoff and resume the session on connection loss")
	)
	flag.Parse()

	space := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	starts := mobility.StartPositions(*seed, *n, space)
	clients := make([]*remote.MobileClient, *n)
	walkers := make([]*mobility.Waypoint, *n)
	for i := 0; i < *n; i++ {
		walkers[i] = mobility.NewWaypoint(*seed, uint64(i), space, *speed, *period, starts[i])
		c, err := remote.DialClientOpts(*addr, uint64(i), starts[i], remote.ClientOptions{Reconnect: *reconnect, Seed: *seed + int64(i)})
		if err != nil {
			log.Fatalf("dial client %d: %v", i, err)
		}
		clients[i] = c
		defer c.Close()
	}
	fmt.Printf("%d clients connected to %s\n", *n, *addr)

	app, err := remote.DialAppOpts(*addr, remote.AppOptions{Reconnect: *reconnect, Seed: *seed})
	if err != nil {
		log.Fatalf("dial app: %v", err)
	}
	defer app.Close()
	rng := rand.New(rand.NewSource(*seed * 31))
	qid := uint64(time.Now().UnixNano()) % 1000000 * 1000 // avoid collisions across runs
	for i := 0; i < *nRange; i++ {
		qid++
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		res, err := app.RegisterRange(query.ID(qid), geom.R(x, y, x+0.1, y+0.1))
		if err != nil {
			log.Fatalf("register range: %v", err)
		}
		fmt.Printf("range query %d: %d initial results\n", qid, len(res))
	}
	for i := 0; i < *nKNN; i++ {
		qid++
		res, err := app.RegisterKNN(query.ID(qid), geom.Pt(rng.Float64(), rng.Float64()), 1+rng.Intn(5), true)
		if err != nil {
			log.Fatalf("register knn: %v", err)
		}
		fmt.Printf("kNN query %d: initial results %v\n", qid, res)
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for u := range app.Updates() {
			if *verbose {
				fmt.Printf("query %d -> %v\n", u.Query, u.Results)
			}
		}
	}()

	deadline := time.Now().Add(*duration)
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	t := 0.0
	for time.Now().Before(deadline) {
		<-ticker.C
		t += 0.05
		for i, c := range clients {
			c.Tick(walkers[i].At(t))
		}
	}

	_ = app.Close() // closes Updates(), letting the drain goroutine finish
	<-drained

	var updates, probes, reconnects int64
	for _, c := range clients {
		u, p := c.Stats()
		updates += u
		probes += p
		reconnects += c.Reconnects()
	}
	reconnects += app.Reconnects()
	fmt.Printf("done: %d updates sent, %d probes answered, %d reconnects over %.1f time units\n",
		updates, probes, reconnects, t)
	if d := app.Dropped(); d > 0 {
		fmt.Printf("app client dropped %d result pushes on backpressure\n", d)
	}
}
