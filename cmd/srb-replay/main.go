// Command srb-replay records and replays monitoring workload traces.
//
// Recording generates a synthetic random-waypoint workload against a live
// monitor, capturing every operation and every probe answer as JSON lines:
//
//	srb-replay -record trace.jsonl -n 500 -duration 10
//
// Replaying reconstructs the run from the trace. With -exact the recorded
// probe answers are fed back, reproducing the original run bit for bit;
// without it probes are answered from last-reported positions (a valid but
// possibly different run):
//
//	srb-replay -replay trace.jsonl -exact
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/query"
	"srb/internal/trace"
)

func main() {
	var (
		recordPath = flag.String("record", "", "generate a workload and record it to this file")
		replayPath = flag.String("replay", "", "replay a trace from this file")
		exact      = flag.Bool("exact", true, "feed recorded probe answers back during replay")
		n          = flag.Int("n", 500, "objects (record mode)")
		w          = flag.Int("w", 16, "queries (record mode)")
		duration   = flag.Float64("duration", 10, "time units (record mode)")
		seed       = flag.Int64("seed", 1, "workload seed (record mode)")
		gridM      = flag.Int("grid", 16, "query grid resolution M")
	)
	flag.Parse()

	switch {
	case *recordPath != "":
		if err := recordWorkload(*recordPath, *n, *w, *duration, *seed, *gridM); err != nil {
			log.Fatal(err)
		}
	case *replayPath != "":
		if err := replayWorkload(*replayPath, *exact, *gridM); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func recordWorkload(path string, n, w int, duration float64, seed int64, gridM int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Backstop for early returns; the success path checks the explicit Close
	// below so a short write surfaces instead of truncating the trace.
	defer f.Close()
	rec := trace.NewRecorder(f)

	rng := rand.New(rand.NewSource(seed))
	space := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	pos := map[uint64]geom.Point{}
	mon := core.New(core.Options{GridM: gridM},
		rec.WrapProber(core.ProberFunc(func(id uint64) geom.Point { return pos[id] })), nil)
	regions := map[uint64]geom.Rect{}
	apply := func(ups []core.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}

	starts := mobility.StartPositions(seed, n, space)
	walkers := make([]*mobility.Waypoint, n)
	for i := 0; i < n; i++ {
		id := uint64(i)
		walkers[i] = mobility.NewWaypoint(seed, id, space, 0.01, 0.2, starts[i])
		pos[id] = starts[i]
		if err := rec.Add(0, id, starts[i]); err != nil {
			return err
		}
		apply(mon.AddObject(id, starts[i]))
	}
	for q := 1; q <= w; q++ {
		qid := query.ID(q)
		switch q % 4 {
		case 0:
			x, y := rng.Float64()*0.8, rng.Float64()*0.8
			r := geom.R(x, y, x+0.1, y+0.1)
			if err := rec.RegisterRange(0, qid, r); err != nil {
				return err
			}
			if _, ups, err := mon.RegisterRange(qid, r); err == nil {
				apply(ups)
			}
		case 1:
			pt := geom.Pt(rng.Float64(), rng.Float64())
			k := 1 + rng.Intn(5)
			if err := rec.RegisterKNN(0, qid, pt, k, true); err != nil {
				return err
			}
			if _, ups, err := mon.RegisterKNN(qid, pt, k, true); err == nil {
				apply(ups)
			}
		case 2:
			pt := geom.Pt(rng.Float64(), rng.Float64())
			if err := rec.RegisterWithinDistance(0, qid, pt, 0.1); err != nil {
				return err
			}
			if _, ups, err := mon.RegisterWithinDistance(qid, pt, 0.1); err == nil {
				apply(ups)
			}
		default:
			x, y := rng.Float64()*0.8, rng.Float64()*0.8
			r := geom.R(x, y, x+0.15, y+0.15)
			if err := rec.RegisterCount(0, qid, r); err != nil {
				return err
			}
			if _, ups, err := mon.RegisterCount(qid, r); err == nil {
				apply(ups)
			}
		}
	}
	for t := 0.0; t < duration; t += 0.02 {
		for i := 0; i < n; i++ {
			id := uint64(i)
			np := walkers[i].At(t)
			pos[id] = np
			if !regions[id].Contains(np) {
				if err := rec.Update(t, id, np); err != nil {
					return err
				}
				mon.SetTime(t)
				apply(mon.Update(id, np))
			}
		}
	}
	if err := rec.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := mon.Stats()
	fmt.Printf("recorded %d events to %s (%d updates, %d probes)\n",
		rec.Events(), path, st.SourceUpdates, st.Probes)
	return nil
}

func replayWorkload(path string, exact bool, gridM int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	var st trace.Stats
	var mon *core.Monitor
	if exact {
		mon, st, err = trace.ReplayExact(f, core.Options{GridM: gridM})
	} else {
		pos := map[uint64]geom.Point{}
		mon = core.New(core.Options{GridM: gridM}, core.ProberFunc(func(id uint64) geom.Point {
			return pos[id]
		}), nil)
		st, err = trace.Replay(f, mon)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d events in %v: %d objects, %d queries\n",
		st.Events, elapsed.Round(time.Millisecond), st.Objects, st.Queries)
	s := mon.Stats()
	fmt.Printf("server work: %d updates, %d probes, %d reevaluations, %d safe regions\n",
		s.SourceUpdates, s.Probes, s.Reevaluations, s.SafeRegionsBuilt)
	return nil
}
