// Command srb-load is the open-loop production load harness (internal/load)
// as a CLI: it drives an srb-server with K concurrent waypoint-mobility
// sessions and a continuous-query mix, ramps the session count in stages
// until the declared latency SLO breaks, optionally SIGKILLs the server
// mid-run to measure the recovery-time objective, and writes the
// machine-readable capacity report (LOAD_*.json).
//
// Two modes:
//
//   - -server-bin <path>: spawn the server under test (with persistence,
//     leases and the admin endpoint enabled), which also unlocks the -rto
//     SIGKILL drill and the server-side /metrics scrape.
//   - -addr <host:port>: drive an externally managed server; -rto is
//     unavailable because the harness cannot kill what it does not own.
//
// Exit status 0 means the run completed and the report validated; the report
// itself says whether the server met the SLO.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"srb/internal/load"
)

func main() {
	var (
		addr        = flag.String("addr", "", "existing server address to drive (mutually exclusive with -server-bin)")
		serverBin   = flag.String("server-bin", "", "srb-server binary to spawn and control")
		sessions    = flag.Int("sessions", 64, "stage-1 mobile session count")
		stages      = flag.String("stages", "1,2,4", "comma-separated session multipliers, strictly increasing")
		stageDur    = flag.Duration("stage-dur", 10*time.Second, "duration of each ramp stage")
		tick        = flag.Duration("tick", 20*time.Millisecond, "per-session movement tick interval")
		reportEvery = flag.Duration("report-every", 100*time.Millisecond, "per-session forced update interval flooring the offered rate; 0 reports only on region exit")
		probeEvery  = flag.Duration("probe-every", 250*time.Millisecond, "probe round-trip sampling interval")
		speed       = flag.Float64("speed", 0.2, "mean waypoint speed per simulated time unit")
		period      = flag.Float64("period", 0.1, "mean constant-movement period")
		timescale   = flag.Float64("timescale", 2.5, "simulated time units per wall second")
		nRange      = flag.Int("range", 4, "continuous range queries")
		nCircle     = flag.Int("circle", 2, "continuous circle queries")
		nKNN        = flag.Int("knn", 2, "continuous kNN queries")
		nCount      = flag.Int("count", 1, "continuous COUNT queries")
		slo         = flag.Duration("slo", 50*time.Millisecond, "p99 latency objective for update acks and probe RTTs")
		rto         = flag.Bool("rto", false, "SIGKILL the server after the ramp and measure recovery (requires -server-bin)")
		rtoTimeout  = flag.Duration("rto-timeout", 30*time.Second, "recovery drill budget")
		seed        = flag.Int64("seed", 1, "workload seed: same seed, same offered workload")
		workers     = flag.Int("workers", 2, "spawned server's batch pipeline workers")
		shards      = flag.Int("shards", 1, "spawned server's object-index shard count")
		lease       = flag.Duration("lease", 30*time.Second, "spawned server's session lease")
		out         = flag.String("out", "LOAD.json", "capacity report output path")
	)
	flag.Parse()
	if err := run(loadArgs{
		addr: *addr, serverBin: *serverBin, sessions: *sessions, stages: *stages,
		stageDur: *stageDur, tick: *tick, reportEvery: *reportEvery, probeEvery: *probeEvery,
		speed: *speed, period: *period, timescale: *timescale,
		nRange: *nRange, nCircle: *nCircle, nKNN: *nKNN, nCount: *nCount,
		slo: *slo, rto: *rto, rtoTimeout: *rtoTimeout, seed: *seed,
		workers: *workers, shards: *shards, lease: *lease, out: *out,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "srb-load: FAIL: %v\n", err)
		os.Exit(1)
	}
}

// loadArgs carries the parsed flags into run, keeping main testably thin.
type loadArgs struct {
	addr, serverBin, stages, out       string
	sessions, nRange, nCircle, nKNN    int
	nCount                             int
	workers, shards                    int
	stageDur, tick, reportEvery        time.Duration
	probeEvery, slo, rtoTimeout, lease time.Duration
	speed, period, timescale           float64
	seed                               int64
	rto                                bool
}

func run(a loadArgs) error {
	mults, err := parseStages(a.stages)
	if err != nil {
		return err
	}
	if (a.addr == "") == (a.serverBin == "") {
		return fmt.Errorf("exactly one of -addr and -server-bin is required")
	}
	if a.rto && a.serverBin == "" {
		return fmt.Errorf("-rto requires -server-bin (cannot SIGKILL an external server)")
	}

	cfg := load.Config{
		Addr:             a.addr,
		Seed:             a.seed,
		Sessions:         a.sessions,
		StageMultipliers: mults,
		StageDuration:    a.stageDur,
		TickEvery:        a.tick,
		ReportEvery:      a.reportEvery,
		ProbeEvery:       a.probeEvery,
		MeanSpeed:        a.speed,
		MeanPeriod:       a.period,
		Timescale:        a.timescale,
		RangeQueries:     a.nRange,
		CircleQueries:    a.nCircle,
		KNNQueries:       a.nKNN,
		CountQueries:     a.nCount,
		SLOP99:           a.slo,
		Logf: func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		},
	}

	if a.serverBin != "" {
		ctl, err := spawnServer(a.serverBin, a.workers, a.shards, a.lease)
		if err != nil {
			return err
		}
		defer ctl.stop()
		cfg.Addr = ctl.addr
		cfg.MetricsURL = ctl.adminURL + "/metrics"
		cfg.FlightURL = ctl.adminURL + "/debug/flightrec"
		if a.rto {
			cfg.Recovery = &load.RecoveryConfig{Control: ctl, Timeout: a.rtoTimeout}
		}
	}

	report, err := load.Run(cfg)
	if err != nil {
		return err
	}
	if err := report.Validate(); err != nil {
		return fmt.Errorf("invalid capacity report: %w", err)
	}
	if err := report.WriteFile(a.out); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	fmt.Printf("srb-load: wrote %s\n", a.out)
	c := report.Capacity
	fmt.Printf("srb-load: capacity: %d sessions (%.1f/core over %d cores) at p99 <= %gms, saturated=%v\n",
		c.MaxSessionsAtSLO, c.SessionsPerCore, report.Cores, c.SLOP99Seconds*1e3, c.Saturated)
	if report.Recovery.Performed {
		fmt.Printf("srb-load: recovery: RTO %.3fs, SLO restored %.3fs after SIGKILL\n",
			report.Recovery.RTOSeconds, report.Recovery.SLORestoreSeconds)
	}
	if report.Flight.Checked {
		fmt.Printf("srb-load: worst-tail trace %#x (stage %d) resolved to %d flight events %v, complete=%v\n",
			report.Flight.Trace, report.Flight.Stage+1, report.Flight.Events,
			report.Flight.Kinds, report.Flight.Complete)
	}
	return nil
}

// parseStages parses the -stages multiplier list.
func parseStages(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-stages: %q is not an integer", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// procControl owns a spawned srb-server process and implements
// load.ServerControl with a real SIGKILL and a -recover re-exec.
type procControl struct {
	bin        string
	addr       string
	adminAddr  string
	adminURL   string
	persistDir string
	workers    int
	shards     int
	lease      time.Duration
	cmd        *exec.Cmd
}

// spawnServer starts the server under test with persistence, leases and the
// admin endpoint on, and waits for the admin surface to come up.
func spawnServer(bin string, workers, shards int, lease time.Duration) (*procControl, error) {
	srvPort, err := freePort()
	if err != nil {
		return nil, err
	}
	adminPort, err := freePort()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "srb-load-")
	if err != nil {
		return nil, err
	}
	ctl := &procControl{
		bin:        bin,
		addr:       "127.0.0.1:" + strconv.Itoa(srvPort),
		adminAddr:  "127.0.0.1:" + strconv.Itoa(adminPort),
		persistDir: dir,
		workers:    workers,
		shards:     shards,
		lease:      lease,
	}
	ctl.adminURL = "http://" + ctl.adminAddr
	// The first life journals without snapshotting so a kill always leaves a
	// journal tail for -recover to replay.
	if err := ctl.start("-snapshot-every", "0"); err != nil {
		return nil, err
	}
	if err := waitAdmin(ctl.adminURL); err != nil {
		ctl.stop()
		return nil, err
	}
	return ctl, nil
}

// start launches one server life with the shared flag set plus extras.
func (c *procControl) start(extra ...string) error {
	args := append([]string{
		"-addr", c.addr, "-admin", c.adminAddr,
		"-workers", strconv.Itoa(c.workers), "-shards", strconv.Itoa(c.shards),
		"-lease", c.lease.String(),
		"-persist", c.persistDir,
	}, extra...)
	cmd := exec.Command(c.bin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", c.bin, err)
	}
	c.cmd = cmd
	return nil
}

// Kill implements load.ServerControl: SIGKILL, no goodbyes.
func (c *procControl) Kill() error {
	if c.cmd == nil || c.cmd.Process == nil {
		return fmt.Errorf("no server process to kill")
	}
	if err := c.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = c.cmd.Wait() // reap; a kill-induced exit error is expected
	c.cmd = nil
	return nil
}

// Restart implements load.ServerControl: same ports, -recover replay, then
// periodic snapshots resume.
func (c *procControl) Restart() error {
	return c.start("-snapshot-every", "1s", "-recover")
}

// stop tears the server and its persist directory down at process exit.
func (c *procControl) stop() {
	if c.cmd != nil && c.cmd.Process != nil {
		_ = c.cmd.Process.Kill()
		_ = c.cmd.Wait()
		c.cmd = nil
	}
	_ = os.RemoveAll(c.persistDir)
}

// freePort asks the kernel for an unused TCP port. The port is released
// before the server claims it — a benign race for a harness run.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// waitAdmin polls the admin endpoint until it answers or the deadline hits.
func waitAdmin(adminURL string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(adminURL + "/stats")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("admin endpoint never came up: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
