// Command srb-viz runs a short simulated monitoring workload and renders the
// final server state — object positions, safe regions, range rectangles and
// kNN quarantine circles — to an SVG file. Useful for inspecting the
// geometry the framework maintains.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"srb/internal/core"
	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/query"
	"srb/internal/viz"
)

func main() {
	var (
		out      = flag.String("o", "srb.svg", "output SVG path")
		n        = flag.Int("n", 300, "number of objects")
		nRange   = flag.Int("range", 4, "range queries")
		nKNN     = flag.Int("knn", 4, "kNN queries")
		seed     = flag.Int64("seed", 1, "workload seed")
		duration = flag.Float64("duration", 5, "simulated time units to run before the snapshot")
		size     = flag.Int("size", 800, "SVG size in pixels")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	space := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	pos := map[uint64]geom.Point{}
	mon := core.New(core.Options{GridM: 16}, core.ProberFunc(func(id uint64) geom.Point {
		return pos[id]
	}), nil)

	regions := map[uint64]geom.Rect{}
	deliver := func(ups []core.SafeRegionUpdate) {
		for _, u := range ups {
			regions[u.Object] = u.Region
		}
	}

	starts := mobility.StartPositions(*seed, *n, space)
	walkers := make([]*mobility.Waypoint, *n)
	var objIDs []uint64
	for i := 0; i < *n; i++ {
		id := uint64(i)
		walkers[i] = mobility.NewWaypoint(*seed, id, space, 0.01, 0.2, starts[i])
		pos[id] = starts[i]
		deliver(mon.AddObject(id, starts[i]))
		objIDs = append(objIDs, id)
	}
	var qids []query.ID
	for q := 1; q <= *nRange; q++ {
		x, y := rng.Float64()*0.8, rng.Float64()*0.8
		if _, ups, err := mon.RegisterRange(query.ID(q), geom.R(x, y, x+0.1, y+0.1)); err == nil {
			deliver(ups)
			qids = append(qids, query.ID(q))
		}
	}
	for q := *nRange + 1; q <= *nRange+*nKNN; q++ {
		if _, ups, err := mon.RegisterKNN(query.ID(q), geom.Pt(rng.Float64(), rng.Float64()), 1+rng.Intn(5), true); err == nil {
			deliver(ups)
			qids = append(qids, query.ID(q))
		}
	}

	for t := 0.0; t < *duration; t += 0.02 {
		mon.SetTime(t)
		for i := 0; i < *n; i++ {
			id := uint64(i)
			np := walkers[i].At(t)
			pos[id] = np
			if !regions[id].Contains(np) {
				deliver(mon.Update(id, np))
			}
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	snap := viz.Capture(mon, objIDs, qids)
	if err := viz.Render(f, snap, viz.Options{Size: *size, Space: space, ShowSafeRegions: true, ShowQuarantines: true}); err != nil {
		log.Fatal(err)
	}
	st := mon.Stats()
	fmt.Printf("wrote %s (%d objects, %d queries; %d updates, %d probes during warmup)\n",
		*out, *n, len(qids), st.SourceUpdates, st.Probes)
}
