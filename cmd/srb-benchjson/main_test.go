package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
		want result
	}{
		{
			name: "full benchmem line with custom metric",
			line: "BenchmarkUpdateSequential-8   \t  500000\t      2100 ns/op\t     128 B/op\t       3 allocs/op\t         0.850 fastpath-fraction",
			ok:   true,
			want: result{Op: "UpdateSequential", Iterations: 500000, NsPerOp: 2100,
				BytesPerOp: 128, AllocsPerOp: 3,
				Metrics: map[string]float64{"fastpath-fraction": 0.85}},
		},
		{
			name: "no benchmem, no custom metrics",
			line: "BenchmarkUpdateBatch-4 1000 1500 ns/op",
			ok:   true,
			want: result{Op: "UpdateBatch", Iterations: 1000, NsPerOp: 1500},
		},
		{
			name: "name with internal dash keeps the dash",
			line: "BenchmarkGrid-Probe-8 10 5 ns/op",
			ok:   true,
			want: result{Op: "Grid-Probe", Iterations: 10, NsPerOp: 5},
		},
		{name: "header line", line: "goos: linux", ok: false},
		{name: "pass line", line: "PASS", ok: false},
		{name: "ok line", line: "ok  \tsrb\t12.3s", ok: false},
		{name: "empty", line: "", ok: false},
		{name: "malformed iteration count", line: "BenchmarkX-8 abc 5 ns/op", ok: false},
		{name: "malformed metric value", line: "BenchmarkX-8 10 xyz ns/op", ok: false},
		{name: "result with no metrics at all", line: "BenchmarkX-8 10 only three", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseBenchLine(tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v (line %q)", ok, tc.ok, tc.line)
			}
			if !ok {
				return
			}
			if got.Op != tc.want.Op || got.Iterations != tc.want.Iterations ||
				got.NsPerOp != tc.want.NsPerOp || got.BytesPerOp != tc.want.BytesPerOp ||
				got.AllocsPerOp != tc.want.AllocsPerOp {
				t.Fatalf("got %+v, want %+v", got, tc.want)
			}
			if len(got.Metrics) != len(tc.want.Metrics) {
				t.Fatalf("metrics %v, want %v", got.Metrics, tc.want.Metrics)
			}
			for k, v := range tc.want.Metrics {
				if got.Metrics[k] != v {
					t.Fatalf("metric %s = %g, want %g", k, got.Metrics[k], v)
				}
			}
		})
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("goos: linux\nPASS\n")); err == nil {
		t.Fatal("input without result lines must be an error")
	}
	rs, err := parseBench(strings.NewReader("BenchmarkX-8 10 5 ns/op\nok srb 1s\n"))
	if err != nil || len(rs) != 1 {
		t.Fatalf("got %v, %v; want one result", rs, err)
	}
}

func mkResult(op string, iters int64, ns, allocs float64) result {
	return result{Op: op, Iterations: iters, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestCompareGate(t *testing.T) {
	base := []result{
		mkResult("UpdateSequential", 1000, 2000, 3),
		mkResult("UpdateBatch", 1000, 1000, 2),
	}
	gate := []string{"UpdateSequential", "UpdateBatch"}

	t.Run("within budget passes", func(t *testing.T) {
		cur := []result{
			mkResult("UpdateSequential", 900, 2200, 3), // +10% ns/op
			mkResult("UpdateBatch", 1000, 1000, 2),
		}
		if _, err := compare(base, cur, gate, 0.15); err != nil {
			t.Fatalf("10%% regression under a 15%% budget failed: %v", err)
		}
	})
	t.Run("ns/op regression fails", func(t *testing.T) {
		cur := []result{
			mkResult("UpdateSequential", 900, 2400, 3), // +20%
			mkResult("UpdateBatch", 1000, 1000, 2),
		}
		_, err := compare(base, cur, gate, 0.15)
		if err == nil || !strings.Contains(err.Error(), "ns/op") {
			t.Fatalf("want ns/op failure, got %v", err)
		}
	})
	t.Run("allocs regression fails", func(t *testing.T) {
		cur := []result{
			mkResult("UpdateSequential", 900, 2000, 4), // 3 -> 4 allocs: +33%
			mkResult("UpdateBatch", 1000, 1000, 2),
		}
		_, err := compare(base, cur, gate, 0.15)
		if err == nil || !strings.Contains(err.Error(), "allocs/op") {
			t.Fatalf("want allocs/op failure, got %v", err)
		}
	})
	t.Run("missing gated op fails", func(t *testing.T) {
		cur := []result{mkResult("UpdateSequential", 900, 2000, 3)}
		_, err := compare(base, cur, gate, 0.15)
		if err == nil || !strings.Contains(err.Error(), "missing from current run") {
			t.Fatalf("want missing-op failure, got %v", err)
		}
	})
	t.Run("zero-iteration row fails", func(t *testing.T) {
		cur := []result{
			mkResult("UpdateSequential", 0, 2000, 3),
			mkResult("UpdateBatch", 1000, 1000, 2),
		}
		_, err := compare(base, cur, gate, 0.15)
		if err == nil || !strings.Contains(err.Error(), "zero iterations") {
			t.Fatalf("want zero-iteration failure, got %v", err)
		}
	})
	t.Run("allocs going zero to nonzero fails", func(t *testing.T) {
		b := []result{mkResult("X", 10, 100, 0)}
		c := []result{mkResult("X", 10, 100, 1)}
		_, err := compare(b, c, []string{"X"}, 0.15)
		if err == nil || !strings.Contains(err.Error(), "0 -> 1") {
			t.Fatalf("want 0->nonzero allocs failure, got %v", err)
		}
	})
	t.Run("improvement passes and default ops are the intersection", func(t *testing.T) {
		cur := []result{
			mkResult("UpdateSequential", 1100, 1500, 2),
			mkResult("UpdateBatch", 1100, 900, 2),
			mkResult("NewOnlyHere", 10, 1, 1),
		}
		verdicts, err := compare(base, cur, nil, 0.15)
		if err != nil {
			t.Fatalf("improvement failed the gate: %v", err)
		}
		joined := strings.Join(verdicts, "\n")
		if strings.Contains(joined, "NewOnlyHere") {
			t.Fatalf("op absent from baseline judged by the default gate: %s", joined)
		}
	})
	t.Run("zero baseline ns/op fails", func(t *testing.T) {
		b := []result{mkResult("X", 10, 0, 1)}
		c := []result{mkResult("X", 10, 100, 1)}
		_, err := compare(b, c, []string{"X"}, 0.15)
		if err == nil || !strings.Contains(err.Error(), "baseline ns/op is zero") {
			t.Fatalf("want zero-baseline failure, got %v", err)
		}
	})
}

func TestSplitOps(t *testing.T) {
	if got := splitOps(""); got != nil {
		t.Fatalf("splitOps(\"\") = %v, want nil", got)
	}
	got := splitOps(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitOps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitOps = %v, want %v", got, want)
		}
	}
}
