// Command srb-benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON snapshot. Each benchmark result line becomes one
// object with the operation name (GOMAXPROCS suffix stripped), iteration
// count, ns/op, B/op and allocs/op when -benchmem is on, and any custom
// b.ReportMetric series (the update benchmarks report fastpath-fraction).
// Objects are emitted in input order, so the file is deterministic for a
// deterministic benchmark list and diffs cleanly between runs.
//
// Usage:
//
//	go test -run '^$' -bench 'Update' -benchmem . | srb-benchjson -out BENCH.json
//
// Lines that are not benchmark results (the goos/goarch header, PASS, ok) are
// ignored. A run with zero parsed results is an error: it means the bench
// pattern matched nothing and the snapshot would silently be empty.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics holds the custom b.ReportMetric
// series keyed by unit (e.g. "fastpath-fraction").
type result struct {
	Op          string             `json:"op"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("read stdin: %v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmark result lines on stdin: check the -bench pattern")
	}

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "srb-benchjson: wrote %d result(s) to %s\n", len(results), *out)
}

// parseBenchLine parses one `Benchmark<Name>-P  N  v1 unit1  v2 unit2 ...`
// line. Reports ok=false for anything else.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Op: name, Iterations: iters}
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		seen = true
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return r, seen
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "srb-benchjson: "+format+"\n", args...)
	os.Exit(2)
}
