// Command srb-benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON snapshot. Each benchmark result line becomes one
// object with the operation name (GOMAXPROCS suffix stripped), iteration
// count, ns/op, B/op and allocs/op when -benchmem is on, and any custom
// b.ReportMetric series (the update benchmarks report fastpath-fraction).
// Objects are emitted in input order, so the file is deterministic for a
// deterministic benchmark list and diffs cleanly between runs.
//
// Usage:
//
//	go test -run '^$' -bench 'Update' -benchmem . | srb-benchjson -out BENCH.json
//
// With -baseline the new snapshot is additionally gated against a previous
// one: for every op named in -gate (comma-separated; default all ops present
// in both files), ns/op and allocs/op may regress by at most -max-regress
// (fractional, default 0.15). A gated op missing from either side, or present
// with zero iterations, fails the gate — silence must not pass for speed.
//
//	... | srb-benchjson -out BENCH_PR8.json -baseline BENCH_PR7.json \
//	      -gate UpdateSequential,UpdateBatch -max-regress 0.15
//
// Lines that are not benchmark results (the goos/goarch header, PASS, ok) are
// ignored. A run with zero parsed results is an error: it means the bench
// pattern matched nothing and the snapshot would silently be empty.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics holds the custom b.ReportMetric
// series keyed by unit (e.g. "fastpath-fraction").
type result struct {
	Op          string             `json:"op"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "previous snapshot to gate against (empty: no gate)")
	gateOps := flag.String("gate", "", "comma-separated ops the gate checks (default: all ops in both snapshots)")
	maxRegress := flag.Float64("max-regress", 0.15, "max fractional ns/op or allocs/op regression vs the baseline")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fatalf("%v", err)
	}

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "srb-benchjson: wrote %d result(s) to %s\n", len(results), *out)
	}

	if *baseline != "" {
		base, err := readSnapshot(*baseline)
		if err != nil {
			fatalf("read baseline: %v", err)
		}
		verdicts, err := compare(base, results, splitOps(*gateOps), *maxRegress)
		for _, v := range verdicts {
			fmt.Fprintf(os.Stderr, "srb-benchjson: %s\n", v)
		}
		if err != nil {
			fatalf("regression gate: %v", err)
		}
		fmt.Fprintf(os.Stderr, "srb-benchjson: regression gate passed (max %.0f%% vs %s)\n",
			*maxRegress*100, *baseline)
	}
}

// parseBench scans benchmark output and returns the parsed result lines.
// Zero parsed results is an error: the bench pattern matched nothing.
func parseBench(r io.Reader) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if r, ok := parseBenchLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read input: %w", err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on input: check the -bench pattern")
	}
	return results, nil
}

// parseBenchLine parses one `Benchmark<Name>-P  N  v1 unit1  v2 unit2 ...`
// line. Reports ok=false for anything else.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Op: name, Iterations: iters}
	// The remainder is value/unit pairs.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		seen = true
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return r, seen
}

// readSnapshot loads a previously written snapshot file.
func readSnapshot(path string) ([]result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(buf, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// splitOps parses the -gate list; empty input means "gate the intersection".
func splitOps(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var ops []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			ops = append(ops, p)
		}
	}
	return ops
}

// compare gates cur against base for the named ops (or their intersection
// when ops is nil): ns/op and allocs/op must not regress beyond maxRegress.
// It returns one human-readable verdict line per checked metric, plus an
// error summarizing every violation. Gated ops missing from either snapshot
// or carrying zero iterations are violations, not skips.
func compare(base, cur []result, ops []string, maxRegress float64) ([]string, error) {
	baseBy := indexByOp(base)
	curBy := indexByOp(cur)
	if ops == nil {
		for op := range baseBy {
			if _, ok := curBy[op]; ok {
				ops = append(ops, op)
			}
		}
		sort.Strings(ops)
		if len(ops) == 0 {
			return nil, fmt.Errorf("no common ops between baseline and current snapshot")
		}
	}
	var verdicts []string
	var failures []string
	for _, op := range ops {
		b, okB := baseBy[op]
		c, okC := curBy[op]
		switch {
		case !okB:
			failures = append(failures, fmt.Sprintf("%s: missing from baseline", op))
			continue
		case !okC:
			failures = append(failures, fmt.Sprintf("%s: missing from current run", op))
			continue
		case b.Iterations == 0 || c.Iterations == 0:
			failures = append(failures, fmt.Sprintf("%s: zero iterations (baseline %d, current %d)",
				op, b.Iterations, c.Iterations))
			continue
		}
		for _, m := range []struct {
			name       string
			base, cur  float64
			zeroIsFail bool
		}{
			{"ns/op", b.NsPerOp, c.NsPerOp, true},
			{"allocs/op", b.AllocsPerOp, c.AllocsPerOp, false},
		} {
			if m.base == 0 {
				if m.zeroIsFail {
					failures = append(failures, fmt.Sprintf("%s: baseline %s is zero", op, m.name))
				} else if m.cur > 0 {
					// allocs/op going 0 → nonzero is a regression with an
					// undefined ratio: flag it explicitly.
					failures = append(failures, fmt.Sprintf("%s: %s regressed 0 -> %g", op, m.name, m.cur))
				}
				continue
			}
			ratio := m.cur / m.base
			verdict := fmt.Sprintf("%s %s: %.6g -> %.6g (%+.1f%%)", op, m.name, m.base, m.cur, (ratio-1)*100)
			if ratio > 1+maxRegress {
				failures = append(failures, fmt.Sprintf("%s %s regressed %.1f%% (limit %.0f%%): %.6g -> %.6g",
					op, m.name, (ratio-1)*100, maxRegress*100, m.base, m.cur))
				verdict += " FAIL"
			}
			verdicts = append(verdicts, verdict)
		}
	}
	if len(failures) > 0 {
		return verdicts, fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return verdicts, nil
}

// indexByOp maps results by op name; a duplicated op keeps its first row,
// matching go test output where each benchmark appears once.
func indexByOp(rs []result) map[string]result {
	m := make(map[string]result, len(rs))
	for _, r := range rs {
		if _, dup := m[r.Op]; !dup {
			m[r.Op] = r
		}
	}
	return m
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "srb-benchjson: "+format+"\n", args...)
	os.Exit(2)
}
