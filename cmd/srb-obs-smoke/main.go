// Command srb-obs-smoke is the observability smoke gate: it starts a real
// srb-server with metrics and persistence enabled, drives a short srb-client
// workload against it, SIGKILLs the server mid-run, restarts it with
// -recover, and lets the auto-reconnecting clients resume. It fails (exit 1)
// unless the /metrics exposition parses, every required metric family is
// present, the workload counters move, and the fault-tolerance families
// (journal, replay, reconnect, region re-push) prove the crash-recovery
// cycle actually happened. It also pulls /trace and /stats to check the rest
// of the admin surface, /queries to assert the per-query cost ledger
// attributed the workload, and /debug/flightrec to assert the flight
// recorder holds traced post-drill evidence. CI runs it via
// `make obs-smoke`; it needs no tools beyond the two freshly built binaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"time"

	"srb/internal/obs"
)

var requiredFamilies = []string{
	// core monitor
	"srb_updates_total",
	// per-query cost ledger
	"srb_query_tracked",
	"srb_query_retired_total",
	"srb_query_wire_bytes_total",
	"srb_query_slow_ops_total",
	"srb_probes_total",
	"srb_probes_avoided_total",
	"srb_reevaluations_total",
	"srb_new_query_evals_total",
	"srb_safe_regions_built_total",
	"srb_op_seconds",
	"srb_objects",
	"srb_queries",
	// batch pipeline (the smoke server runs with -workers 2)
	"srb_batch_batches_total",
	"srb_batch_updates_total",
	"srb_batch_fastpath_fraction",
	"srb_batch_phase_seconds",
	// server event loop
	"srb_server_clients",
	"srb_server_queue_depth",
	"srb_server_request_seconds",
	"srb_server_batch_size",
	// fault tolerance: sessions, persistence, chaos (registered eagerly, so
	// the families exist even when the subsystem idles at zero)
	"srb_server_reconnects_total",
	"srb_server_lease_expiries_total",
	"srb_server_region_repush_total",
	"srb_server_region_send_failures_total",
	"srb_server_journal_entries_total",
	"srb_server_snapshot_seconds",
	"srb_server_replay_seconds",
	"srb_server_replay_entries",
	"srb_server_chaos_faults_total",
}

func main() {
	var (
		serverBin = flag.String("server", "bin/srb-server", "path to the srb-server binary")
		clientBin = flag.String("client", "bin/srb-client", "path to the srb-client binary")
		runFor    = flag.Duration("for", 10*time.Second, "client workload duration")
	)
	flag.Parse()
	if err := run(*serverBin, *clientBin, *runFor); err != nil {
		fmt.Fprintf(os.Stderr, "obs-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: OK")
}

// freePort asks the kernel for an unused TCP port. The port is released
// before the server claims it — a benign race for a smoke test.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// waitAdmin polls the admin endpoint until it answers or the deadline hits.
func waitAdmin(adminURL string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(adminURL + "/stats")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("admin endpoint never came up: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// famSum sums every sample of a counter or gauge family (labeled series
// included); 0 when the family is absent.
func famSum(f *obs.ParsedFamily) float64 {
	if f == nil {
		return 0
	}
	var sum float64
	for _, v := range f.Samples {
		sum += v
	}
	return sum
}

func run(serverBin, clientBin string, runFor time.Duration) error {
	srvPort, err := freePort()
	if err != nil {
		return err
	}
	adminPort, err := freePort()
	if err != nil {
		return err
	}
	srvAddr := "127.0.0.1:" + strconv.Itoa(srvPort)
	adminURL := "http://127.0.0.1:" + strconv.Itoa(adminPort)
	persistDir, err := os.MkdirTemp("", "srb-obs-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(persistDir)

	serverArgs := func(extra ...string) []string {
		return append([]string{
			"-addr", srvAddr, "-admin", "127.0.0.1:" + strconv.Itoa(adminPort),
			"-workers", "2", "-lease", "30s", "-persist", persistDir,
		}, extra...)
	}
	// First life journals without snapshotting, so the restart is guaranteed
	// a journal tail to replay.
	server := exec.Command(serverBin, serverArgs("-snapshot-every", "0")...)
	server.Stdout = os.Stdout
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		return fmt.Errorf("start server: %w", err)
	}
	defer func() {
		_ = server.Process.Kill()
		_ = server.Wait()
	}()
	if err := waitAdmin(adminURL); err != nil {
		return err
	}

	before, err := scrape(adminURL)
	if err != nil {
		return fmt.Errorf("initial scrape: %w", err)
	}

	client := exec.Command(clientBin,
		"-addr", srvAddr, "-n", "40", "-range", "2", "-knn", "2",
		"-speed", "0.05", "-tick", "20ms", "-reconnect", "-for", runFor.String())
	client.Stdout = os.Stdout
	client.Stderr = os.Stderr
	if err := client.Start(); err != nil {
		return fmt.Errorf("start client workload: %w", err)
	}
	defer func() {
		_ = client.Process.Kill()
		_ = client.Wait()
	}()

	// Let the workload run on the first server life, then check it moved.
	time.Sleep(runFor * 3 / 8)
	mid, err := scrape(adminURL)
	if err != nil {
		return fmt.Errorf("mid-run scrape: %w", err)
	}
	for _, counter := range []string{"srb_updates_total", "srb_reevaluations_total"} {
		if mid[counter] == nil || before[counter] == nil {
			return fmt.Errorf("counter %s missing from scrape", counter)
		}
		b := before[counter].Samples[counter]
		a := mid[counter].Samples[counter]
		if a <= b {
			return fmt.Errorf("%s did not move under workload: %g -> %g", counter, b, a)
		}
	}
	if n := famSum(mid["srb_server_journal_entries_total"]); n <= 0 {
		return fmt.Errorf("journal recorded no entries under workload (-persist broken?)")
	}

	// /queries must attribute the live workload's cost: the client's
	// continuous queries are registered right now, so the ledger's top-K view
	// cannot be empty and its hottest entry must have booked real work. (After
	// the client exits its app connection closes and the server deregisters
	// the queries, folding them into the retired bucket — checked post-run.)
	hot, _, err := queryLedger(adminURL)
	if err != nil {
		return err
	}
	if len(hot.Hot) == 0 {
		return fmt.Errorf("/queries attributed no per-query cost under the live workload")
	}
	if h := hot.Hot[0]; h.Query == 0 || (h.Reevals == 0 && h.WireBytes == 0) {
		return fmt.Errorf("/queries hottest entry booked no work: %+v", h)
	}

	// Crash the server — SIGKILL, no goodbyes — and restart it with
	// -recover on the same ports. The -reconnect clients resume onto the
	// recovered monitor while the rest of the workload plays out.
	_ = server.Process.Kill()
	_ = server.Wait()
	server = exec.Command(serverBin, serverArgs("-snapshot-every", "1s", "-recover")...)
	server.Stdout = os.Stdout
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		return fmt.Errorf("restart server: %w", err)
	}
	if err := waitAdmin(adminURL); err != nil {
		return fmt.Errorf("after restart: %w", err)
	}
	if err := client.Wait(); err != nil {
		return fmt.Errorf("client workload: %w", err)
	}

	after, err := scrape(adminURL)
	if err != nil {
		return fmt.Errorf("final scrape: %w", err)
	}
	// The fault-tolerance families must prove the cycle happened end to end:
	// the restart replayed the journal, the clients resumed their sessions,
	// and resuming re-pushed their safe regions.
	if n := famSum(after["srb_server_replay_entries"]); n <= 0 {
		return fmt.Errorf("-recover replayed no journal entries")
	}
	if n := famSum(after["srb_server_reconnects_total"]); n <= 0 {
		return fmt.Errorf("no client reconnects recorded after the restart")
	}
	if n := famSum(after["srb_server_region_repush_total"]); n <= 0 {
		return fmt.Errorf("no safe regions re-pushed to resumed sessions")
	}
	for _, fam := range requiredFamilies {
		f := after[fam]
		if f == nil {
			return fmt.Errorf("required family %s missing; scrape has %v", fam, obs.FamilyNames(after))
		}
		if f.Help == "" || f.Type == "" {
			return fmt.Errorf("family %s lacks HELP/TYPE", fam)
		}
		if len(f.Samples) == 0 {
			return fmt.Errorf("family %s has no samples", fam)
		}
	}
	for _, counter := range []string{"srb_updates_total", "srb_reevaluations_total"} {
		b := before[counter].Samples[counter]
		a := after[counter].Samples[counter]
		if a <= b {
			return fmt.Errorf("%s did not move under workload: %g -> %g", counter, b, a)
		}
	}

	// /trace must serve loadable Chrome trace JSON with events in it.
	resp, err := http.Get(adminURL + "/trace")
	if err != nil {
		return fmt.Errorf("get /trace: %w", err)
	}
	defer resp.Body.Close()
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		return fmt.Errorf("/trace is not valid JSON: %w", err)
	}
	if len(trace.TraceEvents) == 0 {
		return fmt.Errorf("/trace has no events after the workload")
	}

	// After the client exits, its app connection teardown deregisters the
	// queries it owned: the ledger must fold them into the retired aggregate
	// rather than lose the attribution. The teardown races the client's exit
	// status, so poll briefly.
	retireDeadline := time.Now().Add(5 * time.Second)
	for {
		_, retired, err := queryLedger(adminURL)
		if err != nil {
			return err
		}
		if retired > 0 {
			break
		}
		if time.Now().After(retireDeadline) {
			return fmt.Errorf("no ledger entries retired after the client's queries were torn down")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// /debug/flightrec must hold post-drill evidence: a non-empty ring whose
	// events include the resumed sessions' reconnect records.
	respF, err := http.Get(adminURL + "/debug/flightrec")
	if err != nil {
		return fmt.Errorf("get /debug/flightrec: %w", err)
	}
	defer respF.Body.Close()
	if respF.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/flightrec status %d", respF.StatusCode)
	}
	var flightEvents, reconnectEvents int
	decF := json.NewDecoder(respF.Body)
	for {
		var ev struct {
			Kind  string `json:"kind"`
			Trace uint64 `json:"trace"`
		}
		if err := decF.Decode(&ev); err != nil {
			break
		}
		flightEvents++
		if ev.Kind == "reconnect" && ev.Trace != 0 {
			reconnectEvents++
		}
	}
	if flightEvents == 0 {
		return fmt.Errorf("/debug/flightrec is empty after the kill/recover drill")
	}
	if reconnectEvents == 0 {
		return fmt.Errorf("flight recorder holds no traced reconnect events after the drill (%d events total)", flightEvents)
	}

	// /stats must carry the batch pipeline section (workers enabled).
	resp2, err := http.Get(adminURL + "/stats")
	if err != nil {
		return fmt.Errorf("get /stats: %w", err)
	}
	defer resp2.Body.Close()
	var stats struct {
		Batch *struct {
			Updates int64 `json:"Updates"`
		} `json:"batch"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		return fmt.Errorf("/stats is not valid JSON: %w", err)
	}
	if stats.Batch == nil {
		return fmt.Errorf("/stats lacks the batch section with -workers 2")
	}
	return nil
}

// hotLedger is the slice of /queries we assert on.
type hotLedger struct {
	Hot []struct {
		Query     uint64 `json:"query"`
		Reevals   int64  `json:"reevals"`
		WireBytes int64  `json:"wire_bytes"`
	} `json:"hot"`
	RetiredN int64 `json:"retired_queries"`
}

// queryLedger scrapes /queries and returns the decoded top-K view plus the
// retired-entry count.
func queryLedger(adminURL string) (hotLedger, int64, error) {
	var ledger hotLedger
	resp, err := http.Get(adminURL + "/queries?k=5")
	if err != nil {
		return ledger, 0, fmt.Errorf("get /queries: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ledger, 0, fmt.Errorf("/queries status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ledger); err != nil {
		return ledger, 0, fmt.Errorf("/queries is not valid JSON: %w", err)
	}
	return ledger, ledger.RetiredN, nil
}

func scrape(adminURL string) (map[string]*obs.ParsedFamily, error) {
	resp, err := http.Get(adminURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}
