// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7) at a compact scale, plus ablation benchmarks for the design
// choices called out in DESIGN.md and micro-benchmarks of the hot paths.
//
// Figure benchmarks run the corresponding experiment sweep once per
// iteration and report the headline series values through b.ReportMetric, so
// `go test -bench .` both exercises the harness and prints the reproduced
// numbers. Use cmd/srb-sim for full-scale runs.
package srb_test

import (
	"math/rand"
	"sort"
	"testing"

	"srb"
	"srb/internal/geom"
	"srb/internal/mobility"
	"srb/internal/obs"
	"srb/internal/parallel"
	"srb/internal/rtree"
	"srb/internal/saferegion"
	"srb/internal/sim"
)

// benchConfig is the compact scale used by the figure benchmarks.
func benchConfig() sim.Config {
	c := sim.Default()
	c.N = 400
	c.W = 16
	c.Duration = 2
	c.GridM = 12
	return c
}

// reportTable exposes a table's last row through benchmark metrics.
func reportTable(b *testing.B, t sim.Table) {
	b.Helper()
	if len(t.Rows) == 0 {
		b.Fatal("empty table")
	}
	last := t.Rows[len(t.Rows)-1]
	for i, col := range t.Columns {
		b.ReportMetric(last.Values[i], sanitizeMetric(col)+"@x="+trim(last.X))
	}
}

// sanitizeMetric makes a column label a legal benchmark metric unit.
func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '\t', '(', ')':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func trim(v float64) string {
	s := make([]byte, 0, 8)
	return string(appendFloat(s, v))
}

func appendFloat(b []byte, v float64) []byte {
	// Compact fixed formatting good enough for metric labels.
	if v == float64(int64(v)) {
		return appendInt(b, int64(v))
	}
	b = appendInt(b, int64(v))
	b = append(b, '.')
	frac := v - float64(int64(v))
	return appendInt(b, int64(frac*100+0.5))
}

func appendInt(b []byte, v int64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// --- Table 7.1 and Figures 7.1–7.6 -------------------------------------------

func BenchmarkTable71Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim.TableDefaults(benchConfig())
	}
}

func BenchmarkFig71aAccuracyVsDelay(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig71a(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig71bCostVsDelay(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig71b(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig72aCPUVsQueries(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig72a(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig72bCostVsQueries(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig72b(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig73aCPUVsObjects(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig73a(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig73bCostVsObjects(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig73b(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig74aCostVsSpeed(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig74a(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig74bCostVsPeriod(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig74b(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig75GridPartitioning(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig75(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig76aReachabilityCircle(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig76a(benchConfig())
	}
	reportTable(b, t)
}

func BenchmarkFig76bWeightedPerimeter(b *testing.B) {
	var t sim.Table
	for i := 0; i < b.N; i++ {
		t = sim.Fig76b(benchConfig())
	}
	reportTable(b, t)
}

// --- Ablations -----------------------------------------------------------------

// BenchmarkAblationBatchSafeRegion compares the Section 5.3 batch range
// safe-region computation against per-query strip intersection.
func BenchmarkAblationBatchSafeRegion(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		var cost float64
		for i := 0; i < b.N; i++ {
			c := benchConfig()
			c.DisableBatchRange = disable
			cost = sim.RunSRB(c).CommPerClientTime
		}
		b.ReportMetric(cost, "cost/client-time")
	}
	b.Run("batch", func(b *testing.B) { run(b, false) })
	b.Run("per-query", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationGreedyBatch compares the exact combination search against
// the paper's greedy union.
func BenchmarkAblationGreedyBatch(b *testing.B) {
	run := func(b *testing.B, greedy bool) {
		var cost float64
		for i := 0; i < b.N; i++ {
			c := benchConfig()
			c.GreedyBatch = greedy
			cost = sim.RunSRB(c).CommPerClientTime
		}
		b.ReportMetric(cost, "cost/client-time")
	}
	b.Run("exact", func(b *testing.B) { run(b, false) })
	b.Run("greedy", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLazyProbe compares lazy probing (Section 4) against eager
// probing of every ambiguous object during kNN query registration, where the
// hold-until-mandatory technique saves the most probes.
func BenchmarkAblationLazyProbe(b *testing.B) {
	run := func(b *testing.B, eager bool) {
		var probes int64
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(9))
			positions := map[uint64]srb.Point{}
			mon := srb.NewMonitor(srb.Options{GridM: 100, EagerProbes: eager},
				srb.ProberFunc(func(id uint64) srb.Point { return positions[id] }), nil)
			for id := uint64(0); id < 2000; id++ {
				positions[id] = srb.Pt(rng.Float64(), rng.Float64())
				mon.AddObject(id, positions[id])
			}
			for q := 1; q <= 30; q++ {
				if _, _, err := mon.RegisterKNN(srb.QueryID(q), srb.Pt(rng.Float64(), rng.Float64()), 10, true); err != nil {
					b.Fatal(err)
				}
			}
			probes = mon.Stats().Probes
		}
		b.ReportMetric(float64(probes), "probes")
	}
	b.Run("lazy", func(b *testing.B) { run(b, false) })
	b.Run("eager", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCellNeighborhood measures the Section 7.4 adaptive-cell
// extension.
func BenchmarkAblationCellNeighborhood(b *testing.B) {
	run := func(b *testing.B, r int) {
		var cost float64
		for i := 0; i < b.N; i++ {
			c := benchConfig()
			c.CellNeighborhood = r
			cost = sim.RunSRB(c).CommPerClientTime
		}
		b.ReportMetric(cost, "cost/client-time")
	}
	b.Run("single-cell", func(b *testing.B) { run(b, 0) })
	b.Run("3x3", func(b *testing.B) { run(b, 1) })
}

// BenchmarkAblationBottomUpUpdate compares the R*-tree bottom-up update path
// against delete+reinsert for small movements.
func BenchmarkAblationBottomUpUpdate(b *testing.B) {
	const n = 5000
	build := func() (*rtree.Tree, []geom.Rect) {
		rng := rand.New(rand.NewSource(1))
		tr := rtree.New()
		rects := make([]geom.Rect, n)
		for i := 0; i < n; i++ {
			x, y := rng.Float64(), rng.Float64()
			rects[i] = geom.R(x, y, x+0.01, y+0.01)
			tr.Insert(uint64(i), rects[i])
		}
		return tr, rects
	}
	b.Run("bottom-up", func(b *testing.B) {
		tr, rects := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := uint64(i % n)
			r := rects[id]
			tr.Update(id, geom.R(r.MinX+0.0001, r.MinY+0.0001, r.MaxX, r.MaxY))
		}
	})
	b.Run("delete-insert", func(b *testing.B) {
		tr, rects := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := uint64(i % n)
			r := rects[id]
			tr.Delete(id)
			tr.Insert(id, geom.R(r.MinX+0.0001, r.MinY+0.0001, r.MaxX, r.MaxY))
		}
	})
}

// --- Micro-benchmarks of the hot paths ------------------------------------------

func BenchmarkRTreeSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := rtree.New()
	for i := 0; i < 20000; i++ {
		x, y := rng.Float64(), rng.Float64()
		tr.Insert(uint64(i), geom.R(x, y, x+0.005, y+0.005))
	}
	q := geom.R(0.4, 0.4, 0.45, 0.45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Search(q, func(rtree.Item) bool { n++; return true })
	}
}

func BenchmarkRTreeKNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := rtree.New()
	for i := 0; i < 20000; i++ {
		x, y := rng.Float64(), rng.Float64()
		tr.Insert(uint64(i), geom.R(x, y, x+0.002, y+0.002))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNearest(geom.Pt(rng.Float64(), rng.Float64()), 10)
	}
}

func BenchmarkIrlpCircle(b *testing.B) {
	c := geom.Circle{Center: geom.Pt(0.5, 0.5), R: 0.2}
	cell := geom.R(0.4, 0.4, 0.6, 0.6)
	p := geom.Pt(0.55, 0.48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.IrlpCircle(c, p, cell, geom.ExitObjective(p))
	}
}

func BenchmarkIrlpRing(b *testing.B) {
	rg := geom.Ring{Center: geom.Pt(0.5, 0.5), Inner: 0.1, Outer: 0.3}
	cell := geom.R(0.3, 0.3, 0.7, 0.7)
	p := geom.Pt(0.5, 0.75)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.IrlpRing(rg, p, cell, geom.ExitObjective(p))
	}
}

func BenchmarkBatchRangeSafeRegion(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var obstacles []geom.Rect
	p := geom.Pt(0.5, 0.5)
	for len(obstacles) < 12 {
		x, y := rng.Float64(), rng.Float64()
		o := geom.R(x, y, x+0.1, y+0.1)
		if o.Contains(p) {
			continue
		}
		obstacles = append(obstacles, o)
	}
	cell := geom.R(0, 0, 1, 1)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			saferegion.ForRangeBatch(obstacles, p, cell, geom.ExitObjective(p))
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			saferegion.ForRangeBatchGreedy(obstacles, p, cell, geom.ExitObjective(p))
		}
	})
}

// BenchmarkMonitorUpdate measures a single end-to-end location update against
// a populated server, the per-update CPU cost behind Figure 7.2(a).
func BenchmarkMonitorUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	positions := map[uint64]srb.Point{}
	mon := srb.NewMonitor(srb.Options{GridM: 20}, srb.ProberFunc(func(id uint64) srb.Point {
		return positions[id]
	}), nil)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		positions[i] = srb.Pt(rng.Float64(), rng.Float64())
		mon.AddObject(i, positions[i])
	}
	for q := 1; q <= 20; q++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		if q%2 == 0 {
			if _, _, err := mon.RegisterRange(srb.QueryID(q), srb.R(x, y, x+0.05, y+0.05)); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, _, err := mon.RegisterKNN(srb.QueryID(q), srb.Pt(x, y), 5, true); err != nil {
				b.Fatal(err)
			}
		}
	}
	walkers := make([]*mobility.Waypoint, n)
	starts := make([]srb.Point, n)
	for i := range walkers {
		starts[i] = positions[uint64(i)]
		walkers[i] = mobility.NewWaypoint(6, uint64(i), srb.R(0, 0, 1, 1), 0.01, 0.1, starts[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i % n)
		t := float64(i) * 0.0005
		mon.SetTime(t)
		np := walkers[id].At(t)
		positions[id] = np
		mon.Update(id, np)
	}
}

// BenchmarkBulkLoadVsInsert compares STR bulk loading against repeated
// insertion for initial population (relevant at the paper's N=100k scale).
func BenchmarkBulkLoadVsInsert(b *testing.B) {
	const n = 20000
	rng := rand.New(rand.NewSource(7))
	items := make([]rtree.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = rtree.Item{ID: uint64(i), Rect: geom.R(x, y, x+0.002, y+0.002)}
	}
	b.Run("bulk-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.BulkLoad(items)
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New()
			for _, it := range items {
				tr.Insert(it.ID, it.Rect)
			}
		}
	})
}

// --- Batch update pipeline ------------------------------------------------------

// benchMonitor is the monitor surface the update benchmarks populate; both
// srb.Monitor and srb.ShardedMonitor satisfy it.
type benchMonitor interface {
	AddObject(id uint64, p srb.Point) []srb.SafeRegionUpdate
	RegisterRange(id srb.QueryID, r srb.Rect) ([]uint64, []srb.SafeRegionUpdate, error)
	RegisterKNN(id srb.QueryID, p srb.Point, k int, ordered bool) ([]uint64, []srb.SafeRegionUpdate, error)
}

// populateBenchWorld fills a monitor with n walkers and a mixed query load.
// The seeds are fixed so every benchmark variant processes the identical
// update stream.
func populateBenchWorld(b *testing.B, n int, positions map[uint64]srb.Point, mon benchMonitor) []*mobility.Waypoint {
	b.Helper()
	rng := rand.New(rand.NewSource(8))
	for i := uint64(0); i < uint64(n); i++ {
		positions[i] = srb.Pt(rng.Float64(), rng.Float64())
		mon.AddObject(i, positions[i])
	}
	for q := 1; q <= 20; q++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		if q%2 == 0 {
			if _, _, err := mon.RegisterRange(srb.QueryID(q), srb.R(x, y, x+0.05, y+0.05)); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, _, err := mon.RegisterKNN(srb.QueryID(q), srb.Pt(x, y), 5, true); err != nil {
				b.Fatal(err)
			}
		}
	}
	walkers := make([]*mobility.Waypoint, n)
	for i := range walkers {
		walkers[i] = mobility.NewWaypoint(9, uint64(i), srb.R(0, 0, 1, 1), 0.01, 0.1, positions[uint64(i)])
	}
	return walkers
}

// updateBenchWorld is populateBenchWorld against a fresh single-tree monitor.
func updateBenchWorld(b *testing.B, n int) (map[uint64]srb.Point, *srb.Monitor, []*mobility.Waypoint) {
	b.Helper()
	positions := map[uint64]srb.Point{}
	mon := srb.NewMonitor(srb.Options{GridM: 20}, srb.ProberFunc(func(id uint64) srb.Point {
		return positions[id]
	}), nil)
	walkers := populateBenchWorld(b, n, positions, mon)
	return positions, mon, walkers
}

const (
	updateBatchObjects = 2000 // population behind the pipeline acceptance numbers
	updateBatchSize    = 250  // location updates per simulated tick
)

// updateBenchTick materializes one tick's batch: updateBatchSize objects
// report their position at the tick's time, round-robin over the population.
func updateBenchTick(i int, positions map[uint64]srb.Point, walkers []*mobility.Waypoint) (float64, []parallel.Update) {
	t := float64(i) * 0.001
	batch := make([]parallel.Update, updateBatchSize)
	for j := range batch {
		id := uint64((i*updateBatchSize + j) % len(walkers))
		p := walkers[id].At(t)
		positions[id] = p
		batch[j] = parallel.Update{ID: id, Loc: p}
	}
	return t, batch
}

// BenchmarkUpdateSequential is the baseline for BenchmarkUpdateBatch: the
// identical per-tick update stream applied through Monitor.Update in
// ascending object-ID order. One benchmark iteration is one full tick of
// updateBatchSize updates.
func BenchmarkUpdateSequential(b *testing.B) {
	positions, mon, walkers := updateBenchWorld(b, updateBatchObjects)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, batch := updateBenchTick(i, positions, walkers)
		sort.Slice(batch, func(a, c int) bool { return batch[a].ID < batch[c].ID })
		mon.SetTime(t)
		for _, u := range batch {
			mon.Update(u.ID, u.Loc)
		}
	}
}

// BenchmarkUpdateSharded drives BenchmarkUpdateSequential's identical update
// stream against a 4-shard monitor: the delta against the sequential baseline
// is the routing, migration, and channel-rendezvous cost of the sharded
// object index on the hottest path. It is excluded from the ±15% perf gate —
// it tracks the sharding overhead rather than bounding it.
func BenchmarkUpdateSharded(b *testing.B) {
	positions := map[uint64]srb.Point{}
	mon, err := srb.NewShardedMonitor(srb.Options{GridM: 20}, 4, srb.ProberFunc(func(id uint64) srb.Point {
		return positions[id]
	}), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer mon.Close()
	walkers := populateBenchWorld(b, updateBatchObjects, positions, mon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, batch := updateBenchTick(i, positions, walkers)
		sort.Slice(batch, func(a, c int) bool { return batch[a].ID < batch[c].ID })
		mon.SetTime(t)
		for _, u := range batch {
			mon.Update(u.ID, u.Loc)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(mon.Forest().Migrations())/float64(b.N), "migrations/tick")
}

// BenchmarkUpdateBatch drives the same stream through the parallel pipeline
// at 4 workers and reports the fast-path fraction achieved (the share of
// safe-region geometry moved off the serial path).
func BenchmarkUpdateBatch(b *testing.B) {
	positions, mon, walkers := updateBenchWorld(b, updateBatchObjects)
	pipe := parallel.New(mon, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, batch := updateBenchTick(i, positions, walkers)
		mon.SetTime(t)
		pipe.Apply(batch)
	}
	b.StopTimer()
	if st := pipe.Stats(); st.Updates > 0 {
		b.ReportMetric(float64(st.Fast)/float64(st.Updates), "fastpath-fraction")
	}
}

// --- Observability overhead ------------------------------------------------------

// BenchmarkUpdateSequentialInstrumented is BenchmarkUpdateSequential with a
// live metrics registry and decision tracer attached: the delta against the
// uninstrumented run is the full observability cost on the hottest path.
// BenchmarkUpdateSequential itself (hooks compiled in, no sink) measures the
// nil-sink cost, which EXPERIMENTS.md bounds at 5% over the pre-hook seed.
func BenchmarkUpdateSequentialInstrumented(b *testing.B) {
	positions, mon, walkers := updateBenchWorld(b, updateBatchObjects)
	mon.SetObs(obs.NewSink(obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceDepth)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, batch := updateBenchTick(i, positions, walkers)
		sort.Slice(batch, func(a, c int) bool { return batch[a].ID < batch[c].ID })
		mon.SetTime(t)
		for _, u := range batch {
			mon.Update(u.ID, u.Loc)
		}
	}
}

// BenchmarkUpdateBatchInstrumented is BenchmarkUpdateBatch with the sink
// attached to both the monitor and the pipeline.
func BenchmarkUpdateBatchInstrumented(b *testing.B) {
	positions, mon, walkers := updateBenchWorld(b, updateBatchObjects)
	sink := obs.NewSink(obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceDepth))
	mon.SetObs(sink)
	pipe := parallel.New(mon, 4)
	pipe.SetObs(sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, batch := updateBenchTick(i, positions, walkers)
		mon.SetTime(t)
		pipe.Apply(batch)
	}
	b.StopTimer()
	if st := pipe.Stats(); st.Updates > 0 {
		b.ReportMetric(float64(st.Fast)/float64(st.Updates), "fastpath-fraction")
	}
}
